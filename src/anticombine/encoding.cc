#include "anticombine/encoding.h"

namespace antimr {
namespace anticombine {

void EncodeEagerPayload(const std::vector<Slice>& other_keys,
                        const Slice& value, std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(Encoding::kEager));
  PutVarint32(out, static_cast<uint32_t>(other_keys.size()));
  for (const Slice& key : other_keys) PutLengthPrefixed(out, key);
  out->append(value.data(), value.size());
}

size_t EagerPayloadSize(const std::vector<Slice>& other_keys,
                        const Slice& value) {
  size_t size = 1 + static_cast<size_t>(VarintLength(other_keys.size()));
  for (const Slice& key : other_keys) {
    size += static_cast<size_t>(VarintLength(key.size())) + key.size();
  }
  return size + value.size();
}

void EncodeLazyPayload(const Slice& input_key, const Slice& input_value,
                       std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(Encoding::kLazy));
  PutLengthPrefixed(out, input_key);
  out->append(input_value.data(), input_value.size());
}

size_t LazyPayloadSize(const Slice& input_key, const Slice& input_value) {
  return 1 + static_cast<size_t>(VarintLength(input_key.size())) +
         input_key.size() + input_value.size();
}

Status GetEncoding(const Slice& payload, Encoding* encoding, Slice* rest) {
  if (payload.empty()) {
    return Status::Corruption("anti-combining: empty payload");
  }
  const uint8_t flag = static_cast<uint8_t>(payload[0]);
  if (flag > static_cast<uint8_t>(Encoding::kLazy)) {
    return Status::Corruption("anti-combining: bad encoding flag");
  }
  *encoding = static_cast<Encoding>(flag);
  *rest = Slice(payload.data() + 1, payload.size() - 1);
  return Status::OK();
}

Status DecodeEagerPayload(const Slice& rest, std::vector<Slice>* other_keys,
                          Slice* value) {
  Slice in = rest;
  uint32_t n;
  if (!GetVarint32(&in, &n)) {
    return Status::Corruption("anti-combining: bad eager key count");
  }
  other_keys->clear();
  other_keys->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice key;
    if (!GetLengthPrefixed(&in, &key)) {
      return Status::Corruption("anti-combining: truncated eager key");
    }
    other_keys->push_back(key);
  }
  *value = in;
  return Status::OK();
}

Status DecodeLazyPayload(const Slice& rest, Slice* input_key,
                         Slice* input_value) {
  Slice in = rest;
  if (!GetLengthPrefixed(&in, input_key)) {
    return Status::Corruption("anti-combining: truncated lazy key");
  }
  *input_value = in;
  return Status::OK();
}

}  // namespace anticombine
}  // namespace antimr
