// The Shared structure (paper Section 5): a reduce-task-level store for
// decoded key/value pairs awaiting their Reduce call. Faithful to the paper's
// design: a min-heap over keys for O(1) peeks, a hash table from key to value
// list, sorted spills to local disk when the memory budget is exceeded,
// spill merging past a threshold, buffered sequential reads of spilled
// groups, and optional reduce-phase Combining that collapses each key's
// values as they arrive.
#ifndef ANTIMR_ANTICOMBINE_SHARED_H_
#define ANTIMR_ANTICOMBINE_SHARED_H_

#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "io/merger.h"
#include "mr/api.h"
#include "mr/metrics.h"

namespace antimr {
namespace anticombine {

/// \brief Buffer for decoded records, drained in key order.
class Shared {
 public:
  struct Options {
    KeyComparator key_cmp;       ///< total key order (drain order)
    KeyComparator grouping_cmp;  ///< key equality for groups
    Env* env = nullptr;          ///< node-local disk for spills
    std::string file_prefix;     ///< unique per reduce task
    size_t memory_limit_bytes = 8 * 1024 * 1024;
    /// Merge spill files once their count exceeds this (mirrors the map
    /// phase's io.sort.factor-style merging).
    int spill_merge_threshold = 10;
    /// Optional reduce-phase Combiner: values of one key are combined as
    /// they are added, often keeping Shared entirely in memory (paper
    /// Sections 5, 7.5).
    Reducer* combiner = nullptr;
    JobMetrics* metrics = nullptr;
  };

  explicit Shared(Options options);
  ~Shared();

  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;

  /// Insert one decoded record; may trigger combining and/or a spill.
  void Add(const Slice& key, const Slice& value);

  /// True when no records remain (memory and spills).
  bool Empty();

  /// Copy the minimal key into *key. Returns false when empty.
  bool PeekMinKey(std::string* key);

  /// Zero-copy peek: *key views either an interned in-memory key or a spill
  /// stream head. Valid until the next Add/PopMinKeyValues call.
  bool PeekMinKey(Slice* key);

  /// Remove the minimal group (all keys grouping-equal to the minimal key,
  /// from memory and spills) and append its values, in key order, to
  /// *values. *group_key gets the minimal key. Returns false when empty.
  bool PopMinKeyValues(std::string* group_key,
                       std::vector<std::string>* values);

  size_t memory_usage() const { return memory_bytes_; }

 private:
  struct HeapCmp {
    const KeyComparator* cmp;
    bool operator()(const Slice& a, const Slice& b) const {
      return (*cmp)(a, b) > 0;  // min-heap
    }
  };

  void AddInternal(const Slice& key, const Slice& value, bool allow_combine);
  void CombineKey(const Slice& key, std::vector<std::string>* values);
  void SpillToDisk();
  void MaybeMergeSpills();
  /// Minimal key across the in-memory heap and spill stream heads; false
  /// when everything is empty. *out is a view (interned key or spill stream
  /// head) valid until the next mutation.
  bool FindMinKey(Slice* out);
  /// Clear the key arena once nothing references it (table and heap empty).
  void MaybeReclaimKeys();

  /// A key's pending values plus the size at which the next combine fires.
  /// The doubling threshold keeps combining amortized-linear even when the
  /// combiner cannot shrink a key's values below 2 (e.g. top-k style
  /// aggregates over many distinct sub-values).
  struct ValueList {
    std::vector<std::string> values;
    size_t next_combine = 2;
  };

  Options options_;
  /// Each distinct key's bytes are interned once into key_arena_; the table
  /// key and the heap entry are both views of that single copy. The arena is
  /// reclaimed when table and heap drain (spill, or the last group popped) —
  /// the old std::string design copied every key on insert and re-copied it
  /// at each heap_.top() touch during spills and pops.
  Arena key_arena_;
  std::unordered_map<Slice, ValueList, SliceHash> table_;
  std::priority_queue<Slice, std::vector<Slice>, HeapCmp> heap_;
  struct SpillRun {
    std::string fname;
    std::unique_ptr<KVStream> stream;
  };
  std::vector<SpillRun> spills_;
  size_t memory_bytes_ = 0;
  int spill_counter_ = 0;
};

/// \brief ValueIterator over a vector of strings (a popped group).
class VectorValueIterator : public ValueIterator {
 public:
  explicit VectorValueIterator(const std::vector<std::string>* values)
      : values_(values) {}

  bool Next(Slice* value) override {
    if (pos_ >= values_->size()) return false;
    *value = (*values_)[pos_++];
    return true;
  }

 private:
  const std::vector<std::string>* values_;
  size_t pos_ = 0;
};

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_SHARED_H_
