// Sample-based configuration advice (paper Section 6.2): "the decision
// about turning the Combiner off can be made by running the program with
// and without Combiner on a sample of input file splits, choosing the
// winner based on this sample run."
#ifndef ANTIMR_ANTICOMBINE_ADVISOR_H_
#define ANTIMR_ANTICOMBINE_ADVISOR_H_

#include "mr/job_runner.h"
#include "mr/job_spec.h"

namespace antimr {
namespace anticombine {

/// Outcome of a sample run comparison.
struct CombinerAdvice {
  /// Recommended flag C: keep the (transformed) Combiner in the map phase?
  bool map_phase_combiner = true;
  /// Map-output reduction the Combiner achieved on the sample (1.0 = none).
  double combiner_reduction = 1.0;
  /// Shuffled bytes observed with and without the map-phase Combiner.
  uint64_t sample_bytes_with = 0;
  uint64_t sample_bytes_without = 0;
};

/// Run `original` (which must have a combiner_factory) twice on a sample of
/// its input splits — Combiner on and off — and recommend the C flag.
///
/// The paper's rule of thumb: a Combiner that shrinks map output by less
/// than ~20% is not worth running over encoded records, since it decodes
/// (i.e., undoes) Anti-Combining for little gain; a highly effective one
/// pays for itself. `min_reduction` is that threshold (default 0.8: keep
/// the Combiner if with/without <= 0.8).
///
/// \param sample_splits a subset of the job's input (e.g. the first split)
Status AdviseCombinerFlag(const JobSpec& original,
                          const std::vector<InputSplit>& sample_splits,
                          CombinerAdvice* advice,
                          double min_reduction = 0.8);

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_ADVISOR_H_
