// Tuning knobs of the Anti-Combining transformation: the paper's runtime
// cost threshold T and Combiner flag C (Section 6.1), plus the Shared
// structure's memory/spill parameters (Section 5).
#ifndef ANTIMR_ANTICOMBINE_OPTIONS_H_
#define ANTIMR_ANTICOMBINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace antimr {
namespace anticombine {

struct AntiCombineOptions {
  /// The paper's threshold T, in nanoseconds of measured (Map + Partition)
  /// re-execution cost. LazySH is considered for a Map call only when
  /// (map_cost + partition_cost) * partitions_touched <= T.
  ///   T = 0          -> EagerSH only (the paper's Adaptive-0)
  ///   T = kInfiniteT -> unrestricted choice (Adaptive-infinity)
  uint64_t lazy_threshold_nanos = kInfiniteT;

  /// The paper's flag C: run the (transformed) Combiner in the map phase.
  /// With C = 0 the Combiner is skipped map-side but still applied inside
  /// Shared during the reduce phase (Section 6.2, "Combiner on or off").
  bool map_phase_combiner = true;

  /// Apply the original Combiner inside Shared as records are decoded
  /// (reduce-phase combining, Sections 5 and 7.5).
  bool combine_in_shared = true;

  /// Shared's in-memory budget before spilling to local disk.
  size_t shared_memory_bytes = 8 * 1024 * 1024;

  /// Merge Shared spill files once their count exceeds this.
  int shared_spill_merge_threshold = 10;

  /// Force LazySH for every partition that has an input record to resend
  /// (subject to determinism). This is the paper's pure "LazySH" strategy
  /// from Figure 9; normally leave false and let the size test decide.
  bool force_lazy = false;

  /// Make the Eager/Lazy choice independently per partition (paper Section
  /// 6.1). Setting false chooses once per Map call from the summed sizes —
  /// the ablation showing why per-partition is strictly better.
  bool per_partition_choice = true;

  /// Cross-call sharing window (the paper's future-work extension, Section
  /// 9: "optimization not only for the input of a single Map call, but
  /// also across all Map calls in the same map task"). With window W > 1
  /// the AntiMapper batches up to W Map calls and EagerSH-groups values
  /// across them; LazySH still resends individual input records. 1 (the
  /// paper's published algorithm) encodes each Map call independently.
  int cross_call_window = 1;

  static constexpr uint64_t kInfiniteT =
      std::numeric_limits<uint64_t>::max();

  /// Adaptive-0: EagerSH for every record.
  static AntiCombineOptions EagerOnly() {
    AntiCombineOptions o;
    o.lazy_threshold_nanos = 0;
    return o;
  }

  /// Adaptive-infinity: free per-partition choice by encoded size.
  static AntiCombineOptions Unrestricted() { return AntiCombineOptions(); }

  /// Adaptive-alpha: the paper's 400 microsecond runtime threshold.
  static AntiCombineOptions Alpha() {
    AntiCombineOptions o;
    o.lazy_threshold_nanos = 400'000;
    return o;
  }

  /// Pure LazySH (Figure 9's "LazySH" strategy).
  static AntiCombineOptions LazyOnly() {
    AntiCombineOptions o;
    o.force_lazy = true;
    return o;
  }
};

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_OPTIONS_H_
