// AntiReducer: the reducer-side half of the syntactic transformation (paper
// Figure 8, Algorithms 2 and 4). Decodes EagerSH/LazySH records into Shared,
// re-executes the original Map + Partition for LazySH records, and drives the
// original Reduce over the merged stream of regular input and Shared, in key
// order. AntiCombiner applies the same treatment to a Combiner so map-phase
// combining can run over encoded records (paper Section 6.1).
#ifndef ANTIMR_ANTICOMBINE_ANTI_REDUCER_H_
#define ANTIMR_ANTICOMBINE_ANTI_REDUCER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "anticombine/anti_mapper.h"
#include "anticombine/options.h"
#include "anticombine/shared.h"
#include "common/arena.h"
#include "common/hash.h"
#include "mr/api.h"

namespace antimr {
namespace anticombine {

/// \brief Decoding reducer.
class AntiReducer : public Reducer {
 public:
  /// \param o_reducer_factory the original program's reducer
  /// \param o_mapper_factory  the original mapper, re-executed for LazySH
  /// \param o_combiner_factory original combiner or null; applied inside
  ///        Shared when options.combine_in_shared is set
  AntiReducer(ReducerFactory o_reducer_factory, MapperFactory o_mapper_factory,
              ReducerFactory o_combiner_factory, AntiCombineOptions options);

  void Setup(const TaskInfo& info, ReduceContext* ctx) override;
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override;
  void Cleanup(ReduceContext* ctx) override;

 private:
  /// Run the original Reduce on the Shared groups strictly before `key`
  /// (the repeat-until loop of Algorithms 2 and 4). With `to_end` set,
  /// drains everything (the cleanup path).
  void DrainShared(const Slice& key, bool to_end, ReduceContext* ctx);

  /// Decode one incoming record into Shared.
  void DecodeValue(const Slice& rep_key, const Slice& payload);

  ReducerFactory o_reducer_factory_;
  MapperFactory o_mapper_factory_;
  ReducerFactory o_combiner_factory_;
  AntiCombineOptions options_;

  TaskInfo info_;
  std::unique_ptr<Reducer> o_reducer_;
  std::unique_ptr<Mapper> o_mapper_;
  std::unique_ptr<Reducer> o_combiner_;
  std::unique_ptr<Shared> shared_;
  CaptureContext remap_capture_;
  std::vector<KV> discard_;  // sink for Setup-time emissions of sub-objects

  // Scratch reused across Reduce calls to avoid per-group allocations. The
  // local-group fast path interns each plain record once into local_arena_
  // (cleared per Reduce call) instead of materializing two strings per
  // record.
  Arena local_arena_;
  std::vector<RecordRef> local_group_;
  std::vector<Slice> local_values_;
  std::vector<Slice> decode_keys_;
  std::vector<std::string> group_values_;
  std::vector<bool> mine_;
};

/// \brief Anti-Combining-aware Combiner wrapper.
///
/// Runs in the map phase over *encoded* records: decodes the records of its
/// partition, applies the original Combiner per key, and re-encodes the
/// combined output with EagerSH (grouping by combined value across keys),
/// emitting in key order so the segment stays merge-compatible.
class AntiCombiner : public Reducer {
 public:
  AntiCombiner(ReducerFactory o_combiner_factory,
               MapperFactory o_mapper_factory);

  void Setup(const TaskInfo& info, ReduceContext* ctx) override;
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override;
  void Cleanup(ReduceContext* ctx) override;

 private:
  void DecodeValue(const Slice& rep_key, const Slice& payload);
  /// Intern (key, value) into the accumulator; the arena owns all bytes.
  void AddAcc(const Slice& key, const Slice& value);

  ReducerFactory o_combiner_factory_;
  MapperFactory o_mapper_factory_;

  TaskInfo info_;
  std::unique_ptr<Reducer> o_combiner_;
  std::unique_ptr<Mapper> o_mapper_;
  CaptureContext remap_capture_;

  /// Decoded records accumulated across the whole combine pass; sorted by
  /// the key comparator once, in Cleanup (cheaper than an ordered map for
  /// the hot insert path). Keys and values are views into acc_arena_ — each
  /// distinct key is interned once, each value once, instead of a
  /// std::string pair per decoded record.
  Arena acc_arena_;
  std::unordered_map<Slice, std::vector<Slice>, SliceHash> acc_;
};

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_ANTI_REDUCER_H_
