#include "anticombine/advisor.h"

#include "obs/trace.h"

namespace antimr {
namespace anticombine {

Status AdviseCombinerFlag(const JobSpec& original,
                          const std::vector<InputSplit>& sample_splits,
                          CombinerAdvice* advice, double min_reduction) {
  if (!original.combiner_factory) {
    return Status::InvalidArgument(
        "AdviseCombinerFlag: the job has no Combiner to advise about");
  }
  RunOptions options;
  options.collect_output = false;

  JobSpec with_combiner = original;
  JobResult with_result;
  ANTIMR_RETURN_NOT_OK(
      RunJob(with_combiner, sample_splits, options, &with_result));

  JobSpec without_combiner = original;
  without_combiner.combiner_factory = nullptr;
  JobResult without_result;
  ANTIMR_RETURN_NOT_OK(
      RunJob(without_combiner, sample_splits, options, &without_result));

  advice->sample_bytes_with = with_result.metrics.shuffle_bytes;
  advice->sample_bytes_without = without_result.metrics.shuffle_bytes;
  advice->combiner_reduction =
      without_result.metrics.shuffle_bytes == 0
          ? 1.0
          : static_cast<double>(with_result.metrics.shuffle_bytes) /
                static_cast<double>(without_result.metrics.shuffle_bytes);
  advice->map_phase_combiner = advice->combiner_reduction <= min_reduction;
  ANTIMR_TRACE_INSTANT(
      "anticombine", "advisor_decision",
      obs::TraceArgs()
          .Add("keep_combiner",
               advice->map_phase_combiner ? std::string("yes")
                                          : std::string("no"))
          .Add("sample_bytes_with", advice->sample_bytes_with)
          .Add("sample_bytes_without", advice->sample_bytes_without));
  return Status::OK();
}

}  // namespace anticombine
}  // namespace antimr
