#include "anticombine/transform.h"

#include "anticombine/anti_mapper.h"
#include "anticombine/anti_reducer.h"

namespace antimr {
namespace anticombine {

JobSpec EnableAntiCombining(const JobSpec& original,
                            const AntiCombineOptions& options) {
  JobSpec transformed = original;
  transformed.name = original.name + "+anticombine";

  const bool allow_lazy = original.deterministic;
  const MapperFactory o_mapper = original.mapper_factory;
  const ReducerFactory o_reducer = original.reducer_factory;
  const ReducerFactory o_combiner = original.combiner_factory;

  transformed.mapper_factory = [o_mapper, options, allow_lazy]() {
    return std::make_unique<AntiMapper>(o_mapper, options, allow_lazy);
  };
  transformed.reducer_factory = [o_reducer, o_mapper, o_combiner, options]() {
    return std::make_unique<AntiReducer>(o_reducer, o_mapper, o_combiner,
                                         options);
  };
  if (o_combiner && options.map_phase_combiner) {
    transformed.combiner_factory = [o_combiner, o_mapper]() {
      return std::make_unique<AntiCombiner>(o_combiner, o_mapper);
    };
  } else {
    // Flag C = 0: drop the Combiner from the map phase; AntiReducer still
    // applies the original Combiner inside Shared.
    transformed.combiner_factory = nullptr;
  }
  transformed.mapper_reports_logical_output = true;
  return transformed;
}

}  // namespace anticombine
}  // namespace antimr
