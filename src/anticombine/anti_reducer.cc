#include "anticombine/anti_reducer.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "anticombine/encoding.h"
#include "common/stopwatch.h"
#include "mr/metrics.h"
#include "mr/reduce_task.h"
#include "obs/metrics_registry.h"

namespace antimr {
namespace anticombine {

namespace {
std::string UniqueSharedPrefix(int task_id) {
  static std::atomic<uint64_t> counter{0};
  return "shared_r" + std::to_string(task_id) + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}
}  // namespace

AntiReducer::AntiReducer(ReducerFactory o_reducer_factory,
                         MapperFactory o_mapper_factory,
                         ReducerFactory o_combiner_factory,
                         AntiCombineOptions options)
    : o_reducer_factory_(std::move(o_reducer_factory)),
      o_mapper_factory_(std::move(o_mapper_factory)),
      o_combiner_factory_(std::move(o_combiner_factory)),
      options_(options) {}

void AntiReducer::Setup(const TaskInfo& info, ReduceContext* ctx) {
  info_ = info;
  o_reducer_ = o_reducer_factory_();
  o_reducer_->Setup(info, ctx);

  // The original mapper is needed to decode LazySH records. Setup-time
  // emissions (rare, and already shipped by the map phase) are discarded.
  o_mapper_ = o_mapper_factory_();
  remap_capture_.Clear();
  o_mapper_->Setup(info, &remap_capture_);
  remap_capture_.Clear();

  if (o_combiner_factory_ && options_.combine_in_shared) {
    o_combiner_ = o_combiner_factory_();
    CollectingContext discard_ctx(&discard_);
    o_combiner_->Setup(info, &discard_ctx);
    discard_.clear();
  }

  Shared::Options so;
  so.key_cmp = info.key_cmp;
  so.grouping_cmp = info.grouping_cmp;
  so.env = info.env;
  so.file_prefix = UniqueSharedPrefix(info.task_id);
  so.memory_limit_bytes = options_.shared_memory_bytes;
  so.spill_merge_threshold = options_.shared_spill_merge_threshold;
  so.combiner = o_combiner_.get();
  so.metrics = info.metrics;
  shared_ = std::make_unique<Shared>(std::move(so));
}

void AntiReducer::DrainShared(const Slice& key, bool to_end,
                              ReduceContext* ctx) {
  Slice alt_key;  // zero-copy peek; only inspected before the pop
  std::vector<std::string> values;
  while (shared_->PeekMinKey(&alt_key)) {
    if (!to_end && info_.grouping_cmp(alt_key, key) >= 0) break;
    values.clear();
    std::string group_key;
    if (!shared_->PopMinKeyValues(&group_key, &values)) break;
    VectorValueIterator it(&values);
    o_reducer_->Reduce(group_key, &it, ctx);
  }
}

void AntiReducer::DecodeValue(const Slice& rep_key, const Slice& payload) {
  JobMetrics* m = info_.metrics;
  Encoding encoding;
  Slice rest;
  ANTIMR_CHECK_OK(GetEncoding(payload, &encoding, &rest));

  if (encoding == Encoding::kEager) {
    const uint64_t t0 = NowNanos();
    decode_keys_.clear();
    Slice value;
    ANTIMR_CHECK_OK(DecodeEagerPayload(rest, &decode_keys_, &value));
    if (m != nullptr) m->cpu.decode += NowNanos() - t0;
    shared_->Add(rep_key, value);
    for (const Slice& key : decode_keys_) shared_->Add(key, value);
    return;
  }

  // LazySH: re-execute the original Map and Partition, keeping only the
  // records assigned to this reduce task (Algorithm 4, lines 6-10).
  Slice input_key, input_value;
  {
    const uint64_t t0 = NowNanos();
    ANTIMR_CHECK_OK(DecodeLazyPayload(rest, &input_key, &input_value));
    if (m != nullptr) m->cpu.decode += NowNanos() - t0;
  }
  remap_capture_.Clear();
  const uint64_t t0 = NowNanos();
  o_mapper_->Map(input_key, input_value, &remap_capture_);
  mine_.assign(remap_capture_.size(), false);
  for (size_t i = 0; i < remap_capture_.size(); ++i) {
    mine_[i] = info_.partitioner->Partition(remap_capture_.key(i),
                                            info_.num_reduce_tasks) ==
               info_.shuffle_partition;
  }
  if (m != nullptr) {
    m->cpu.remap += NowNanos() - t0;
    m->remap_calls += 1;
  }
  // One Inc per Lazy record is dwarfed by the Map re-execution it tallies.
  static obs::Counter* const remap_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_remap_calls_total",
          "LazySH decodes that re-executed the original Map");
  remap_counter->Inc();
  for (size_t i = 0; i < remap_capture_.size(); ++i) {
    if (mine_[i]) shared_->Add(remap_capture_.key(i), remap_capture_.value(i));
  }
}

void AntiReducer::Reduce(const Slice& key, ValueIterator* values,
                         ReduceContext* ctx) {
  // Algorithm 2/4, lines 1-5: finish the Shared groups ordered before this
  // key.
  DrainShared(key, /*to_end=*/false, ctx);

  // Lines 6-10: decode every incoming record. Decoded keys are always >=
  // the representative key, so nothing lands behind the cursor.
  //
  // Fast path: flagged-plain records (EagerSH with an empty key set) whose
  // group needs no Shared interaction are accumulated locally — the common
  // case for programs with no sharing opportunities (Section 7.1), where
  // routing every record through Shared would be pure overhead. The first
  // encoded record (or pre-existing Shared content for this group)
  // switches to the general Shared path.
  local_group_.clear();
  local_arena_.Clear();
  bool use_shared = false;
  auto flush_locals = [&]() {
    for (const RecordRef& rec : local_group_) {
      shared_->Add(rec.key, rec.value);
    }
    local_group_.clear();
    local_arena_.Clear();
  };

  Slice payload;
  while (values->Next(&payload)) {
    const Slice record_key = values->key();
    if (!use_shared) {
      Encoding encoding;
      Slice rest;
      ANTIMR_CHECK_OK(GetEncoding(payload, &encoding, &rest));
      if (encoding == Encoding::kEager) {
        decode_keys_.clear();
        Slice value;
        ANTIMR_CHECK_OK(DecodeEagerPayload(rest, &decode_keys_, &value));
        if (decode_keys_.empty()) {
          local_group_.push_back(local_arena_.InternRecord(record_key, value));
          continue;
        }
      }
      use_shared = true;
      flush_locals();
    }
    DecodeValue(record_key, payload);
  }

  if (!use_shared) {
    // Earlier Reduce calls may have parked grouping-equal records in
    // Shared; those force the merged path.
    Slice min_key;
    if (shared_->PeekMinKey(&min_key) &&
        info_.grouping_cmp(min_key, key) == 0) {
      use_shared = true;
      flush_locals();
    }
  }

  // Lines 11-12: run the original Reduce on the union of the decoded
  // records for this group (regular input and Shared are merged inside
  // PopMinKeyValues, in key order).
  if (use_shared) {
    std::string popped;
    group_values_.clear();
    if (shared_->PopMinKeyValues(&popped, &group_values_)) {
      VectorValueIterator it(&group_values_);
      o_reducer_->Reduce(popped, &it, ctx);
    }
    return;
  }
  if (!local_group_.empty()) {
    // Hand the original Reduce arena-backed views: the group's records are
    // already pinned in local_arena_, so no per-value string is built.
    local_values_.clear();
    local_values_.reserve(local_group_.size());
    for (const RecordRef& rec : local_group_) {
      local_values_.push_back(rec.value);
    }
    SliceVectorIterator it(&local_values_);
    o_reducer_->Reduce(local_group_.front().key, &it, ctx);
  }
}

void AntiReducer::Cleanup(ReduceContext* ctx) {
  // Process everything left in Shared (the cleanup loop of Section 3.2),
  // then shut down the wrapped objects.
  DrainShared(Slice(), /*to_end=*/true, ctx);
  o_reducer_->Cleanup(ctx);
  remap_capture_.Clear();
  o_mapper_->Cleanup(&remap_capture_);
  remap_capture_.Clear();
  if (o_combiner_ != nullptr) {
    CollectingContext discard_ctx(&discard_);
    o_combiner_->Cleanup(&discard_ctx);
    discard_.clear();
  }
  shared_.reset();
}

// ---------------------------------------------------------------------------

AntiCombiner::AntiCombiner(ReducerFactory o_combiner_factory,
                           MapperFactory o_mapper_factory)
    : o_combiner_factory_(std::move(o_combiner_factory)),
      o_mapper_factory_(std::move(o_mapper_factory)) {}

void AntiCombiner::Setup(const TaskInfo& info, ReduceContext* ctx) {
  (void)ctx;
  info_ = info;
  o_combiner_ = o_combiner_factory_();
  std::vector<KV> discard;
  CollectingContext discard_ctx(&discard);
  o_combiner_->Setup(info, &discard_ctx);

  o_mapper_ = o_mapper_factory_();
  remap_capture_.Clear();
  o_mapper_->Setup(info, &remap_capture_);
  remap_capture_.Clear();

  acc_.clear();
  acc_arena_.Clear();
}

void AntiCombiner::AddAcc(const Slice& key, const Slice& value) {
  auto it = acc_.find(key);
  if (it == acc_.end()) {
    // First sighting: intern the key once; every later record with this key
    // costs only the value intern.
    it = acc_.emplace(acc_arena_.Intern(key), std::vector<Slice>()).first;
  }
  it->second.push_back(acc_arena_.Intern(value));
}

void AntiCombiner::DecodeValue(const Slice& rep_key, const Slice& payload) {
  Encoding encoding;
  Slice rest;
  ANTIMR_CHECK_OK(GetEncoding(payload, &encoding, &rest));
  if (encoding == Encoding::kEager) {
    std::vector<Slice> other_keys;
    Slice value;
    ANTIMR_CHECK_OK(DecodeEagerPayload(rest, &other_keys, &value));
    AddAcc(rep_key, value);
    for (const Slice& key : other_keys) {
      AddAcc(key, value);
    }
    return;
  }
  Slice input_key, input_value;
  ANTIMR_CHECK_OK(DecodeLazyPayload(rest, &input_key, &input_value));
  remap_capture_.Clear();
  o_mapper_->Map(input_key, input_value, &remap_capture_);
  if (info_.metrics != nullptr) info_.metrics->remap_calls += 1;
  for (size_t i = 0; i < remap_capture_.size(); ++i) {
    const Slice k = remap_capture_.key(i);
    if (info_.partitioner->Partition(k, info_.num_reduce_tasks) ==
        info_.shuffle_partition) {
      AddAcc(k, remap_capture_.value(i));
    }
  }
}

void AntiCombiner::Reduce(const Slice& key, ValueIterator* values,
                          ReduceContext* ctx) {
  (void)ctx;  // all output is emitted from Cleanup, already re-encoded
  (void)key;
  Slice payload;
  while (values->Next(&payload)) {
    // The record's own key, not the group key: with a grouping comparator
    // the two can differ.
    DecodeValue(values->key(), payload);
  }
}

void AntiCombiner::Cleanup(ReduceContext* ctx) {
  // Combine each decoded key's values with the original Combiner, visiting
  // keys in comparator order (the accumulator is unordered for insert
  // speed; one sort here is cheaper than a tree per insert).
  std::vector<Slice> keys;
  keys.reserve(acc_.size());
  for (const auto& [key, values] : acc_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [this](const Slice& a, const Slice& b) {
    return info_.key_cmp(a, b) < 0;
  });
  std::vector<KV> combined;
  CollectingContext collect(&combined);
  for (const Slice& key : keys) {
    SliceVectorIterator it(&acc_[key]);
    o_combiner_->Reduce(key, &it, &collect);
  }
  o_combiner_->Cleanup(&collect);
  acc_.clear();
  acc_arena_.Clear();

  // Re-encode with EagerSH: group the combined records by value so keys
  // sharing a combined value collapse into one record.
  std::unordered_map<std::string_view, std::vector<size_t>> by_value;
  for (size_t i = 0; i < combined.size(); ++i) {
    by_value[combined[i].value].push_back(i);
  }
  struct Group {
    Slice rep_key;
    std::vector<Slice> other_keys;
    Slice value;
  };
  std::vector<Group> groups;
  groups.reserve(by_value.size());
  for (auto& [value, indexes] : by_value) {
    Group g;
    g.value = Slice(value.data(), value.size());
    size_t min_pos = 0;
    for (size_t j = 1; j < indexes.size(); ++j) {
      if (info_.key_cmp(combined[indexes[j]].key,
                        combined[indexes[min_pos]].key) < 0) {
        min_pos = j;
      }
    }
    g.rep_key = combined[indexes[min_pos]].key;
    for (size_t j = 0; j < indexes.size(); ++j) {
      if (j == min_pos) continue;
      g.other_keys.push_back(Slice(combined[indexes[j]].key));
    }
    std::sort(g.other_keys.begin(), g.other_keys.end(),
              [this](const Slice& a, const Slice& b) {
                return info_.key_cmp(a, b) < 0;
              });
    groups.push_back(std::move(g));
  }
  // The segment this combiner feeds must stay key-sorted for later merges.
  std::sort(groups.begin(), groups.end(),
            [this](const Group& a, const Group& b) {
              return info_.key_cmp(a.rep_key, b.rep_key) < 0;
            });
  std::string payload;
  for (const Group& g : groups) {
    EncodeEagerPayload(g.other_keys, g.value, &payload);
    ctx->Emit(g.rep_key, payload);
  }

}

}  // namespace anticombine
}  // namespace antimr
