#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace antimr {

Random::Random(uint64_t seed) {
  // SplitMix64 expansion of the seed so nearby seeds give unrelated streams.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  for (auto& s : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    s = x ^ (x >> 31);
  }
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
}

uint64_t Random::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection-free multiply-shift is biased for huge n; acceptable here since
  // n is far below 2^48 in all call sites, but use rejection to be exact.
  const uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Random::Skewed(int max_log) {
  const uint64_t base = Uniform(static_cast<uint64_t>(max_log) + 1);
  return Next() & ((1ULL << base) - 1);
}

double Random::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Random* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace antimr
