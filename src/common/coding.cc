#include "common/coding.h"

#include <cstring>

namespace antimr {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);  // little-endian hosts only (x86/arm64)
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int i = 0;
  while (value >= 0x80) {
    buf[i++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int i = 0;
  while (value >= 0x80) {
    buf[i++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64;
  Slice copy = *input;
  if (!GetVarint64(&copy, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  *input = copy;
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      input->RemovePrefix(static_cast<size_t>(p - input->data()));
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(Slice* input, Slice* result) {
  Slice copy = *input;
  uint64_t len;
  if (!GetVarint64(&copy, &len) || copy.size() < len) return false;
  *result = Slice(copy.data(), static_cast<size_t>(len));
  copy.RemovePrefix(static_cast<size_t>(len));
  *input = copy;
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->RemovePrefix(8);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace antimr
