#include "common/hash.h"

namespace antimr {

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint32_t HashMix32(uint32_t v) {
  v ^= v >> 16;
  v *= 0x85ebca6bU;
  v ^= v >> 13;
  v *= 0xc2b2ae35U;
  v ^= v >> 16;
  return v;
}

uint64_t HashMix64(uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v;
}

}  // namespace antimr
