#include "common/stopwatch.h"

#include <ctime>

namespace antimr {

namespace {
inline uint64_t ClockNanos(clockid_t id) {
  timespec ts;
  clock_gettime(id, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}
}  // namespace

uint64_t NowNanos() { return ClockNanos(CLOCK_MONOTONIC); }

uint64_t ThreadCpuNanos() { return ClockNanos(CLOCK_THREAD_CPUTIME_ID); }

}  // namespace antimr
