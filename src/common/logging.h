// Minimal leveled logging to stderr. Quiet by default so test and bench
// output stays readable; benches raise the level for progress lines.
#ifndef ANTIMR_COMMON_LOGGING_H_
#define ANTIMR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace antimr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define ANTIMR_LOG(level)                                               \
  if (static_cast<int>(::antimr::LogLevel::level) <                     \
      static_cast<int>(::antimr::GetLogLevel())) {                      \
  } else                                                                \
    ::antimr::internal::LogMessage(::antimr::LogLevel::level, __FILE__, \
                                   __LINE__)                            \
        .stream()

}  // namespace antimr

#endif  // ANTIMR_COMMON_LOGGING_H_
