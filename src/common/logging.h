// Minimal leveled logging to stderr. Quiet by default so test and bench
// output stays readable; benches raise the level for progress lines.
//
// Lines carry a monotonic seconds-since-process-start timestamp and a small
// per-process thread id — the same id the tracer uses for its lanes — so a
// log line can be matched against the span active in a trace file:
//   [0.013942 T03 INFO shuffle.cc:212] fetched segment 4/8
// Cluster processes additionally stamp a node label (SetLogNodeLabel) so
// interleaved coordinator/worker stderr remains attributable:
//   [0.013942 w2 T03 INFO shuffle.cc:212] fetched segment 4/8
// The initial threshold comes from the ANTIMR_LOG environment variable
// (debug|info|warn|error); unset or unrecognized keeps the kWarn default.
#ifndef ANTIMR_COMMON_LOGGING_H_
#define ANTIMR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace antimr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parse an ANTIMR_LOG-style name ("debug", "info", "warn", "error",
/// case-insensitive). Returns false and leaves *level untouched on anything
/// else, including nullptr.
bool ParseLogLevel(const char* name, LogLevel* level);

/// Small dense id for the calling thread (0 for the first thread that ever
/// logs or traces, then 1, 2, ...). Shared with obs::Tracer so log lines and
/// trace lanes agree on which thread is which.
int LogThreadId();

/// Process-wide node label stamped into every log line ("coord", "w2", ...).
/// Empty (the default) omits the field entirely, keeping single-process
/// output unchanged. Set once at process/role setup; not synchronized for
/// concurrent mutation.
void SetLogNodeLabel(const std::string& label);
std::string GetLogNodeLabel();

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define ANTIMR_LOG(level)                                               \
  if (static_cast<int>(::antimr::LogLevel::level) <                     \
      static_cast<int>(::antimr::GetLogLevel())) {                      \
  } else                                                                \
    ::antimr::internal::LogMessage(::antimr::LogLevel::level, __FILE__, \
                                   __LINE__)                            \
        .stream()

}  // namespace antimr

#endif  // ANTIMR_COMMON_LOGGING_H_
