// Status / Result error handling in the RocksDB/Arrow style: no exceptions on
// hot paths, explicit propagation, cheap OK path.
#ifndef ANTIMR_COMMON_STATUS_H_
#define ANTIMR_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace antimr {

/// \brief Outcome of an operation that can fail.
///
/// The OK status carries no allocation. Error statuses carry a code and a
/// human-readable message. Statuses must be checked by the caller; helper
/// macros ANTIMR_RETURN_NOT_OK / ANTIMR_CHECK_OK cover the common patterns.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kNotSupported,
    kResourceExhausted,
    kInternal,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

  /// Transient-vs-permanent classification for retry decisions: true when
  /// re-executing the failed operation may succeed (I/O flakes, resource
  /// pressure). Corruption, InvalidArgument, NotFound, NotSupported, and
  /// Internal are permanent — retrying them would just repeat the failure,
  /// or worse, mask a real bug behind attempt noise.
  bool IsTransient() const {
    return code_ == Code::kIOError || code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Full "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  Code code_;
  std::string msg_;
};

/// \brief A value-or-error union, like arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return value_;
  }
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  T ValueOr(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

#define ANTIMR_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::antimr::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define ANTIMR_CHECK_OK(expr)                                         \
  do {                                                                \
    ::antimr::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                  \
      ::antimr::internal::FatalStatus(_st, __FILE__, __LINE__);       \
    }                                                                 \
  } while (0)

namespace internal {
[[noreturn]] void FatalStatus(const Status& st, const char* file, int line);
}  // namespace internal

}  // namespace antimr

#endif  // ANTIMR_COMMON_STATUS_H_
