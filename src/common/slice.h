// A non-owning byte view with the small helpers the framework's record
// plumbing needs. Thin wrapper over std::string_view so call sites read like
// RocksDB code while interoperating with the standard library.
#ifndef ANTIMR_COMMON_SLICE_H_
#define ANTIMR_COMMON_SLICE_H_

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>

namespace antimr {

/// \brief Non-owning view of a byte range.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT

  /// String literals (and other char arrays) convert implicitly: they have
  /// static or caller-scoped storage, so a Slice over them is safe to keep.
  template <size_t N>
  Slice(const char (&lit)[N]) : data_(lit), size_(std::strlen(lit)) {}  // NOLINT

  /// Raw char pointers must convert EXPLICITLY. The old implicit conversion
  /// invited dangling-temporary bugs once slices started living in
  /// containers (arena indexes, interned-key tables): a `const char*`
  /// obtained from a transient buffer would silently become a stored view.
  explicit Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drop the first n bytes from the view.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way bytewise comparison, matching memcmp semantics.
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
  friend bool operator<(const Slice& a, const Slice& b) {
    return a.compare(b) < 0;
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace antimr

#endif  // ANTIMR_COMMON_SLICE_H_
