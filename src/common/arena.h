// Chunked bump allocator backing the zero-copy record path. Records flow
// through the system as RecordRef slices pinned to an arena (map-attempt
// output buffers, capture contexts, Shared's interned keys) instead of being
// re-materialized as owning std::strings at every layer hop.
//
// Lifetime rules: bytes returned by Allocate/Intern stay valid — at stable
// addresses, chunks never move or reallocate — until Clear() or destruction.
// Clear() retains chunk capacity, so steady-state use (one arena per map
// attempt / capture window / Shared generation) allocates only during
// warm-up.
#ifndef ANTIMR_COMMON_ARENA_H_
#define ANTIMR_COMMON_ARENA_H_

#include <cstring>
#include <memory>
#include <vector>

#include "common/slice.h"

namespace antimr {

/// \brief A key/value record as non-owning views, typically arena-pinned.
///
/// The view-typed analog of KV: layers exchange RecordRefs and the arena (or
/// block frame) that backs them defines validity. When produced by
/// Arena::InternRecord, key and value are contiguous (value follows key).
struct RecordRef {
  Slice key;
  Slice value;

  RecordRef() = default;
  RecordRef(Slice k, Slice v) : key(k), value(v) {}

  size_t bytes() const { return key.size() + value.size(); }
};

/// \brief Chunked bump allocator with byte interning.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bytes at a stable address; valid until Clear()/destruction.
  /// n == 0 returns a non-null pointer to zero usable bytes.
  char* Allocate(size_t n) {
    if (cur_ == nullptr || pos_ + n > cur_->size) NextChunk(n);
    char* out = cur_->data.get() + pos_;
    pos_ += n;
    bytes_used_ += n;
    return out;
  }

  /// Copy `s` into the arena; the returned view aliases arena storage.
  Slice Intern(const Slice& s) {
    if (s.empty()) return Slice();
    char* dst = Allocate(s.size());
    std::memcpy(dst, s.data(), s.size());
    return Slice(dst, s.size());
  }

  /// Intern key and value contiguously (value directly after key), so a
  /// record costs one bump and index structures can store base + lengths.
  RecordRef InternRecord(const Slice& key, const Slice& value) {
    const size_t total = key.size() + value.size();
    if (total == 0) return RecordRef();
    char* dst = Allocate(total);
    std::memcpy(dst, key.data(), key.size());
    std::memcpy(dst + key.size(), value.data(), value.size());
    return RecordRef(Slice(dst, key.size()),
                     Slice(dst + key.size(), value.size()));
  }

  /// Bytes handed out since the last Clear().
  size_t bytes_used() const { return bytes_used_; }

  /// Total chunk capacity held (survives Clear — the retained footprint).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Invalidate everything handed out, retaining chunk capacity for reuse.
  void Clear() {
    cur_ = nullptr;
    next_ = 0;
    pos_ = 0;
    bytes_used_ = 0;
  }

  /// Release all chunks (unlike Clear, frees the retained footprint).
  void Reset() {
    Clear();
    chunks_.clear();
    chunks_.shrink_to_fit();
    bytes_allocated_ = 0;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Switch to the next retained chunk that fits n bytes, or grow a new
  /// one. Oversized requests get a dedicated chunk, so a huge record cannot
  /// poison the steady-state chunk size.
  void NextChunk(size_t n) {
    while (next_ < chunks_.size()) {
      Chunk* candidate = &chunks_[next_++];
      if (candidate->size >= n) {
        cur_ = candidate;
        pos_ = 0;
        return;
      }
      // Retained chunk too small for this request: skipped this generation
      // (its capacity comes back after the next Clear).
    }
    Chunk c;
    c.size = n > chunk_bytes_ ? n : chunk_bytes_;
    c.data = std::make_unique<char[]>(c.size);
    bytes_allocated_ += c.size;
    chunks_.push_back(std::move(c));
    cur_ = &chunks_.back();
    next_ = chunks_.size();
    pos_ = 0;
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  Chunk* cur_ = nullptr;  // invalidated by chunks_ growth; NextChunk re-aims
  size_t next_ = 0;       // scan cursor: first retained chunk not yet used
  size_t pos_ = 0;
  size_t bytes_used_ = 0;
  size_t bytes_allocated_ = 0;
};

}  // namespace antimr

#endif  // ANTIMR_COMMON_ARENA_H_
