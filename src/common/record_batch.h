// The unit of vectorized record movement: a batch of RecordRef views plus
// the options a producer uses to bound one. Batches extend the PR-5
// valid-until-Next rule one level up: every view in a batch stays valid
// until the NEXT call (NextBatch or Next) on the stream that produced it,
// so a consumer may walk the whole batch — and only the whole batch —
// without copying.
//
// A stream is consumed either record-wise (Valid/key/value/Next) or
// batch-wise (NextBatch), never interleaved: the default NextBatch adapter
// defers the underlying advance to the start of the following call, so a
// record-wise call in between would observe (or destroy) a record the batch
// consumer still owns.
#ifndef ANTIMR_COMMON_RECORD_BATCH_H_
#define ANTIMR_COMMON_RECORD_BATCH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/arena.h"
#include "common/slice.h"

namespace antimr {

/// Three-way key comparator; negative/zero/positive like memcmp. (Also
/// declared by io/merger.h — the aliases name the same type.)
using KeyComparator = std::function<int(const Slice&, const Slice&)>;

/// A batch of borrowed records. Ordering and lifetime are the producer's:
/// sorted streams produce sorted batches, and every view dies at the next
/// call on the producing stream.
using RecordBatch = std::vector<RecordRef>;

/// Default record cap per NextBatch call.
constexpr size_t kDefaultBatchRecords = 1024;

/// \brief Caller-side bounds on one NextBatch call.
struct BatchOptions {
  /// Maximum records the producer may return (>= 1 is always honored by
  /// producers when the stream is non-empty and the key bound admits).
  size_t max_records = kDefaultBatchRecords;

  /// Optional exclusive/inclusive key bound: only records with
  /// cmp(key, *stop_key) < 0 — or == 0 when take_equal — are taken. The
  /// k-way merge uses this to drain a winner up to the next contender's
  /// head without losing merge stability. Null = unbounded.
  const Slice* stop_key = nullptr;
  bool take_equal = false;
  /// Comparator for stop_key checks; required when stop_key is set.
  const KeyComparator* cmp = nullptr;
  /// Optional plain-function form of `cmp`, used preferentially: Admits
  /// runs per record in producers' bound checks, where the std::function
  /// dispatch costs more than the comparison. Set it when the comparator
  /// wraps a plain function (the merge extracts it via cmp.target()).
  int (*raw_cmp)(const Slice&, const Slice&) = nullptr;

  /// True when `key` is inside the bound (always true when unbounded).
  bool Admits(const Slice& key) const {
    if (stop_key == nullptr) return true;
    const int c =
        raw_cmp != nullptr ? raw_cmp(key, *stop_key) : (*cmp)(key, *stop_key);
    return c < 0 || (c == 0 && take_equal);
  }
};

}  // namespace antimr

#endif  // ANTIMR_COMMON_RECORD_BATCH_H_
