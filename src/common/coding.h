// Varint and fixed-width little-endian primitives used by every on-disk and
// on-wire format in the project (spill runs, shuffle segments, Anti-Combining
// record encodings).
#ifndef ANTIMR_COMMON_CODING_H_
#define ANTIMR_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace antimr {

/// Append a 32-bit little-endian value.
void PutFixed32(std::string* dst, uint32_t value);
/// Append a 64-bit little-endian value.
void PutFixed64(std::string* dst, uint64_t value);
/// Append a LEB128 varint (1-5 bytes for 32-bit).
void PutVarint32(std::string* dst, uint32_t value);
/// Append a LEB128 varint (1-10 bytes for 64-bit).
void PutVarint64(std::string* dst, uint64_t value);
/// Append varint(length) followed by the bytes of value.
void PutLengthPrefixed(std::string* dst, const Slice& value);

uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

/// Consume a varint32 from the front of *input. Returns false on truncation
/// or overflow; *input is unchanged on failure.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
/// Consume varint(length)+bytes from *input into *result (non-owning view
/// into the input buffer).
bool GetLengthPrefixed(Slice* input, Slice* result);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Number of bytes PutVarint32/64 would append.
int VarintLength(uint64_t value);

/// Write a varint32 at `dst` (caller sized the buffer via VarintLength);
/// returns one past the last byte written. The in-place counterpart of
/// PutVarint32 for encoders that serialize into pre-allocated arena bytes.
inline char* EncodeVarint32(char* dst, uint32_t value) {
  while (value >= 0x80) {
    *dst++ = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  *dst++ = static_cast<char>(value);
  return dst;
}

/// Pointer-based varint32 with the common 1-byte case inlined — for decode
/// loops that run once per record, where the Slice-mutating GetVarint32
/// costs more than the parse itself. Returns the advanced pointer, or
/// nullptr on truncation/overflow.
inline const char* GetVarint32Ptr(const char* p, const char* end,
                                  uint32_t* value) {
  if (p < end) {
    const uint32_t b = static_cast<unsigned char>(*p);
    if (b < 0x80) {
      *value = b;
      return p + 1;
    }
  }
  uint32_t result = 0;
  for (int shift = 0; shift <= 28 && p < end; shift += 7) {
    const uint32_t b = static_cast<unsigned char>(*p++);
    result |= (b & 0x7f) << shift;
    if (b < 0x80) {
      *value = result;
      return p;
    }
  }
  return nullptr;
}

/// Zig-zag encoding so small negative ints stay small on the wire.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace antimr

#endif  // ANTIMR_COMMON_CODING_H_
