// Wall-clock and per-thread CPU-clock timing. Anti-Combining's adaptive
// threshold logic (paper Fig. 7) needs the measured cost of each Map +
// Partition call, and the benchmark harness needs per-phase CPU totals that
// mirror the paper's "total CPU time" columns.
#ifndef ANTIMR_COMMON_STOPWATCH_H_
#define ANTIMR_COMMON_STOPWATCH_H_

#include <cstdint>

namespace antimr {

/// Monotonic wall-clock time in nanoseconds.
uint64_t NowNanos();

/// CPU time of the calling thread in nanoseconds (CLOCK_THREAD_CPUTIME_ID).
uint64_t ThreadCpuNanos();

/// \brief Accumulates elapsed nanoseconds across Start/Stop cycles.
class Stopwatch {
 public:
  void Start() { start_ = NowNanos(); }
  /// Stop and add the elapsed interval; returns the interval length.
  uint64_t Stop() {
    const uint64_t d = NowNanos() - start_;
    total_ += d;
    return d;
  }
  uint64_t total_nanos() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  uint64_t start_ = 0;
  uint64_t total_ = 0;
};

/// \brief RAII guard adding a scope's wall time into a counter.
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() { *sink_ += NowNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace antimr

#endif  // ANTIMR_COMMON_STOPWATCH_H_
