#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace antimr {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

namespace internal {
void FatalStatus(const Status& st, const char* file, int line) {
  std::fprintf(stderr, "FATAL %s:%d status not OK: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace antimr
