// Hash functions for partitioners and hash tables.
#ifndef ANTIMR_COMMON_HASH_H_
#define ANTIMR_COMMON_HASH_H_

#include <cstdint>

#include "common/slice.h"

namespace antimr {

/// 64-bit FNV-1a over an arbitrary byte range. Deterministic across runs, so
/// partition assignments (and therefore experiment results) are reproducible.
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL);

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Hash64(s.data(), s.size(), seed);
}

/// 32-bit mixing finalizer (murmur3 fmix) for integer keys.
uint32_t HashMix32(uint32_t v);
uint64_t HashMix64(uint64_t v);

/// Hash functor so unordered containers can key on Slice directly (e.g.
/// Shared's interned-key table) instead of materializing std::string keys.
/// Pair with the default std::equal_to<Slice>, which uses Slice::operator==.
struct SliceHash {
  size_t operator()(const Slice& s) const {
    return static_cast<size_t>(Hash64(s));
  }
};

}  // namespace antimr

#endif  // ANTIMR_COMMON_HASH_H_
