// Deterministic PRNGs and samplers for the synthetic data generators and the
// 1-Bucket-Theta randomized bucket assignment. We avoid <random> engines in
// hot paths and for cross-platform reproducibility of generated data sets.
#ifndef ANTIMR_COMMON_RANDOM_H_
#define ANTIMR_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace antimr {

/// \brief xorshift128+ generator: fast, decent quality, fully deterministic.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool OneIn(uint32_t n) { return Uniform(n) == 0; }

  /// Geometric-ish skewed value: picks base in [0, max_log] uniformly and
  /// returns a uniform value in [0, 2^base). Matches rocksdb::Random::Skewed.
  uint64_t Skewed(int max_log);

  /// Gaussian via Box-Muller.
  double NextGaussian(double mean, double stddev);

 private:
  uint64_t s_[2];
};

/// \brief Zipf(s) sampler over ranks 1..n using precomputed CDF.
///
/// Used to give synthetic query logs and graph degrees the heavy-tailed
/// popularity profile the paper's real data sets have.
class ZipfSampler {
 public:
  /// \param n number of distinct items
  /// \param s skew exponent (s=0 is uniform; ~1 is classic Zipf)
  ZipfSampler(size_t n, double s);

  /// Sample a rank in [0, n), rank 0 being the most popular.
  size_t Sample(Random* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace antimr

#endif  // ANTIMR_COMMON_RANDOM_H_
