#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/stopwatch.h"

namespace antimr {

namespace {

int InitialLevelFromEnv() {
  LogLevel level = LogLevel::kWarn;
  ParseLogLevel(std::getenv("ANTIMR_LOG"), &level);
  return static_cast<int>(level);
}

std::atomic<int> g_level{InitialLevelFromEnv()};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

uint64_t ProcessStartNanos() {
  static const uint64_t start = NowNanos();
  return start;
}

// Touch the start timestamp during static init so the first log line does not
// report 0.000000 regardless of when it happens.
[[maybe_unused]] const uint64_t g_start_nanos_init = ProcessStartNanos();

}  // namespace

bool ParseLogLevel(const char* name, LogLevel* level) {
  if (name == nullptr) return false;
  // Tiny fixed table; tolower by hand to avoid locale surprises.
  char buf[8];
  size_t n = std::strlen(name);
  if (n == 0 || n >= sizeof(buf)) return false;
  for (size_t i = 0; i < n; ++i) {
    char c = name[i];
    buf[i] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  buf[n] = '\0';
  if (std::strcmp(buf, "debug") == 0) {
    *level = LogLevel::kDebug;
  } else if (std::strcmp(buf, "info") == 0) {
    *level = LogLevel::kInfo;
  } else if (std::strcmp(buf, "warn") == 0 ||
             std::strcmp(buf, "warning") == 0) {
    *level = LogLevel::kWarn;
  } else if (std::strcmp(buf, "error") == 0) {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {
std::mutex g_label_mutex;
std::string g_node_label;  // guarded by g_label_mutex
}  // namespace

void SetLogNodeLabel(const std::string& label) {
  std::lock_guard<std::mutex> lock(g_label_mutex);
  g_node_label = label;
}

std::string GetLogNodeLabel() {
  std::lock_guard<std::mutex> lock(g_label_mutex);
  return g_node_label;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  const double secs =
      static_cast<double>(NowNanos() - ProcessStartNanos()) * 1e-9;
  const std::string label = GetLogNodeLabel();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (label.empty()) {
    std::fprintf(stderr, "[%.6f T%02d %s %s:%d] %s\n", secs, LogThreadId(),
                 LevelName(level), base, line, msg.c_str());
  } else {
    std::fprintf(stderr, "[%.6f %s T%02d %s %s:%d] %s\n", secs, label.c_str(),
                 LogThreadId(), LevelName(level), base, line, msg.c_str());
  }
}
}  // namespace internal

}  // namespace antimr
