// Message vocabulary of the coordinator/worker protocol and the shuffle
// fetch protocol, with hand-rolled encode/decode over common/coding.h
// primitives (no external serialization dependency). Every message rides in
// one frame (net/frame.h); the frame type byte is the MsgType.
//
// Control plane (worker <-> coordinator, one long-lived Conn per worker):
//
//   worker -> Register          once, immediately after dialing
//   coord  -> RegisterAck       assigns the worker id
//   worker -> Heartbeat         every heartbeat period, piggybacking an
//                               absolute metrics-registry snapshot
//   coord  -> TaskAssign        one map or reduce task execution
//   worker -> TaskResult        matching rpc_id, success or failure,
//                               piggybacking the task's trace chunk
//   worker -> TraceChunk        residual trace events at shutdown
//   coord  -> Shutdown          graceful stop
//
// Data plane (reducer's ShuffleClient <-> map-side SegmentServer):
//
//   client -> FetchReq          one segment file name
//   server -> FetchChunk*       the segment's stored bytes, chunked
//   server -> FetchEnd          end of segment
//   server -> FetchError        Status instead of data
#ifndef ANTIMR_NET_WIRE_H_
#define ANTIMR_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mr/api.h"
#include "mr/metrics.h"

namespace antimr {
namespace net {

enum MsgType : uint8_t {
  kRegister = 1,
  kRegisterAck = 2,
  kHeartbeat = 3,
  kTaskAssign = 4,
  kTaskResult = 5,
  kShutdown = 6,
  kTraceChunk = 7,
  kCancelTask = 8,
  // coordinator -> worker, job-scoped (payload: JobIdMsg). CancelJob flips
  // the cancel flag of every running attempt in the job's id scope;
  // ScrubJob deletes the job's files (segments, spills) from the worker's
  // storage — the GC a persistent multi-tenant daemon needs.
  kCancelJob = 9,
  kScrubJob = 10,
  kFetchReq = 16,
  kFetchChunk = 17,
  kFetchEnd = 18,
  kFetchError = 19,
  // Job lifecycle plane (client <-> JobService listener, one conn per
  // client, request/response in lockstep):
  kSubmitJob = 32,
  kSubmitJobAck = 33,
  kJobStatusReq = 34,   ///< payload: JobIdMsg
  kJobStatusResp = 35,
  kAbortJob = 36,       ///< payload: JobIdMsg
  kJobOpAck = 37,
  kListJobsReq = 38,    ///< payload: empty
  kListJobsResp = 39,
};

struct RegisterMsg {
  std::string worker_name;
  std::string shuffle_addr;  ///< where this worker's SegmentServer listens
  uint32_t slots = 1;        ///< concurrent task capacity
};

struct RegisterAckMsg {
  uint32_t worker_id = 0;
};

/// Per-inflight-task progress carried on every heartbeat so the coordinator
/// can spot stragglers without extra round-trips. permille is coarse
/// (records processed / split size for maps, fetch fraction for reduces).
struct TaskProgress {
  uint64_t rpc_id = 0;
  uint32_t permille = 0;  ///< 0..1000
};

struct HeartbeatMsg {
  uint32_t worker_id = 0;
  uint64_t seq = 0;
  /// EncodeMetricsSnapshot of the worker's registry: *absolute* cumulative
  /// values, so a retransmitted or reordered beat folds idempotently at the
  /// coordinator (obs/federation.h). Empty = no snapshot this beat.
  std::string metrics_snapshot;
  /// Progress of every task currently executing on this worker. Absolute
  /// values, so a dropped beat costs only staleness.
  std::vector<TaskProgress> task_progress;
};

/// coordinator -> worker: stop the attempt identified by rpc_id (the loser
/// of a speculative race). Best-effort: the worker flips the task's cancel
/// flag; the task fails with a transient error and scrubs its partial
/// output through the same path a crashed attempt would.
struct CancelTaskMsg {
  uint64_t rpc_id = 0;
};

/// String key/value pairs a registered job builder turns back into a
/// JobSpec on the worker (JobSpec itself holds std::function factories and
/// cannot cross a process boundary).
using JobParams = std::vector<std::pair<std::string, std::string>>;

enum class TaskKind : uint8_t { kMap = 0, kReduce = 1 };

/// One remote segment a reduce task must fetch: the owning worker's shuffle
/// address plus the segment file name on that worker's storage.
struct SegmentRef {
  std::string addr;
  std::string file;
};

struct TaskAssignMsg {
  uint64_t rpc_id = 0;  ///< echoed in the TaskResult
  TaskKind kind = TaskKind::kMap;
  std::string job_name;  ///< registered builder name
  JobParams params;
  std::string job_id;  ///< segment-file scope (attempt-unique for maps)
  uint32_t task_index = 0;
  uint32_t attempt = 0;
  // Map tasks: the split's records, encoded with EncodeKVList.
  std::string split_records;
  // Reduce tasks: every map's segment for this partition, in map-index
  // order (merge order is part of the output contract).
  std::vector<SegmentRef> segments;
  bool collect_output = true;
  double network_mb_per_s = 0;  ///< simulated fetch bandwidth on the worker
  uint32_t readahead_blocks = 0;
  /// Trace context: the coordinator is capturing, so record spans for this
  /// task (job_id/task_index/attempt above name them) and ship them back in
  /// TaskResultMsg::trace_chunk.
  bool trace_enabled = false;
};

struct TaskResultMsg {
  uint64_t rpc_id = 0;
  int32_t status_code = 0;  ///< Status::Code as int; 0 = ok
  std::string status_msg;
  // Map tasks: segment file name per reduce partition ("" = empty).
  std::vector<std::string> segment_files;
  // Reduce tasks: the partition's output, encoded with EncodeKVList.
  std::string output_records;
  std::string metrics;  ///< EncodeJobMetrics of the task's JobMetrics
  uint64_t cpu_nanos = 0;
  /// Serialized trace lane blocks recorded while running this task (see
  /// Tracer::DrainThisThread). Empty when the assignment had trace off.
  std::string trace_chunk;
};

struct FetchReqMsg {
  std::string file;
  /// Trace context: flow-arrow id pairing the reducer's FlowStart with the
  /// serving worker's FlowEnd (0 = not tracing), plus a human-readable
  /// requester label ("reduce:<job_id>:<index>") for the serve span's args.
  uint64_t flow_id = 0;
  std::string origin;
};

/// Residual trace events a worker process drains at shutdown (events not
/// attributable to one task: shuffle serves, heartbeats). worker_id lets the
/// coordinator map the chunk to its process lane.
struct TraceChunkMsg {
  uint32_t worker_id = 0;
  std::string chunk;
};

struct FetchErrorMsg {
  int32_t status_code = 0;
  std::string status_msg;
};

// --- job lifecycle plane -------------------------------------------------

/// Payload of every message that names one job: kCancelJob / kScrubJob on
/// the worker control plane, kJobStatusReq / kAbortJob on the service plane.
struct JobIdMsg {
  std::string job_id;
};

/// client -> JobService: admit one job into a pool. Splits ship pre-encoded
/// (each entry is an EncodeKVList payload) so the service never re-encodes
/// what the client already serialized. Zero-valued resource/limit fields
/// mean "service default".
struct SubmitJobMsg {
  std::string pool;      ///< "" = the service's first (default) pool
  std::string job_name;  ///< registered builder name
  JobParams params;
  std::string job_id;  ///< "" = service assigns one
  uint32_t cpu_slots = 0;      ///< concurrent task-dispatch grant
  uint64_t memory_bytes = 0;   ///< map-buffer/Shared admission estimate
  uint32_t max_task_attempts = 0;
  double network_mb_per_s = 0;
  uint32_t readahead_blocks = 0;
  bool collect_output = true;
  std::vector<std::string> splits;  ///< EncodeKVList payload per map task
};

struct SubmitJobAckMsg {
  int32_t status_code = 0;  ///< admission verdict; 0 = queued
  std::string status_msg;
  std::string job_id;
};

/// Point-in-time job row, served by kJobStatusResp and kListJobsResp.
/// Timestamps are the service's monotonic clock (durations are meaningful,
/// absolute values are not). output_hash is the order-insensitive multiset
/// hash of the job's collected output — the byte-identity check crosses the
/// wire as 8 bytes instead of the whole output.
struct JobStatusWire {
  std::string job_id;
  std::string pool;
  std::string job_name;
  std::string state;  ///< queued|admitted|running|succeeded|failed|aborted
  uint32_t queue_position = 0;  ///< 1-based within pool; 0 = not queued
  uint32_t cpu_slots = 0;       ///< granted dispatch slots
  uint64_t maps_total = 0;
  uint64_t maps_done = 0;
  uint64_t reduces_total = 0;
  uint64_t reduces_done = 0;
  uint64_t map_reruns = 0;
  int32_t status_code = 0;  ///< terminal Status; 0 until failed/aborted
  std::string status_msg;
  uint64_t output_hash = 0;
  uint64_t output_records = 0;
  uint64_t submit_nanos = 0;
  uint64_t start_nanos = 0;   ///< 0 until dispatched
  uint64_t finish_nanos = 0;  ///< 0 until terminal
  uint64_t dispatch_seq = 0;  ///< fair-share dispatch order; 0 = not yet
};

struct JobStatusRespMsg {
  int32_t status_code = 0;  ///< lookup verdict (NotFound for unknown ids)
  std::string status_msg;
  JobStatusWire job;
};

struct JobOpAckMsg {
  int32_t status_code = 0;
  std::string status_msg;
};

struct ListJobsRespMsg {
  int32_t status_code = 0;
  std::string status_msg;
  std::vector<JobStatusWire> jobs;
};

// --- encode/decode -------------------------------------------------------
// Decode returns IOError on malformed payloads (transient: a garbled
// message is wire trouble, and the frame CRC already screens storage-level
// corruption).

void EncodeRegister(const RegisterMsg& msg, std::string* out);
Status DecodeRegister(const std::string& payload, RegisterMsg* msg);

void EncodeRegisterAck(const RegisterAckMsg& msg, std::string* out);
Status DecodeRegisterAck(const std::string& payload, RegisterAckMsg* msg);

void EncodeHeartbeat(const HeartbeatMsg& msg, std::string* out);
Status DecodeHeartbeat(const std::string& payload, HeartbeatMsg* msg);

void EncodeCancelTask(const CancelTaskMsg& msg, std::string* out);
Status DecodeCancelTask(const std::string& payload, CancelTaskMsg* msg);

void EncodeTaskAssign(const TaskAssignMsg& msg, std::string* out);
Status DecodeTaskAssign(const std::string& payload, TaskAssignMsg* msg);

void EncodeTaskResult(const TaskResultMsg& msg, std::string* out);
Status DecodeTaskResult(const std::string& payload, TaskResultMsg* msg);

void EncodeFetchReq(const FetchReqMsg& msg, std::string* out);
Status DecodeFetchReq(const std::string& payload, FetchReqMsg* msg);

void EncodeTraceChunk(const TraceChunkMsg& msg, std::string* out);
Status DecodeTraceChunk(const std::string& payload, TraceChunkMsg* msg);

void EncodeFetchError(const FetchErrorMsg& msg, std::string* out);
Status DecodeFetchError(const std::string& payload, FetchErrorMsg* msg);

void EncodeJobId(const JobIdMsg& msg, std::string* out);
Status DecodeJobId(const std::string& payload, JobIdMsg* msg);

void EncodeSubmitJob(const SubmitJobMsg& msg, std::string* out);
Status DecodeSubmitJob(const std::string& payload, SubmitJobMsg* msg);

void EncodeSubmitJobAck(const SubmitJobAckMsg& msg, std::string* out);
Status DecodeSubmitJobAck(const std::string& payload, SubmitJobAckMsg* msg);

void EncodeJobStatusResp(const JobStatusRespMsg& msg, std::string* out);
Status DecodeJobStatusResp(const std::string& payload, JobStatusRespMsg* msg);

void EncodeJobOpAck(const JobOpAckMsg& msg, std::string* out);
Status DecodeJobOpAck(const std::string& payload, JobOpAckMsg* msg);

void EncodeListJobsResp(const ListJobsRespMsg& msg, std::string* out);
Status DecodeListJobsResp(const std::string& payload, ListJobsRespMsg* msg);

/// Rebuild a Status from a (code, message) pair that crossed the wire.
Status StatusFromWire(int32_t code, const std::string& msg);

/// KV list codec used for split records and reduce outputs:
/// varint64(count) then count x (length-prefixed key, length-prefixed value).
void EncodeKVList(const std::vector<KV>& records, std::string* out);
Status DecodeKVList(const std::string& payload, std::vector<KV>* records);

/// JobMetrics codec: every X-macro sum/max field, the per-phase CPU fields,
/// and total_cpu_nanos/wall_nanos, as varint64s in declaration order.
void EncodeJobMetrics(const JobMetrics& metrics, std::string* out);
Status DecodeJobMetrics(const std::string& payload, JobMetrics* metrics);

}  // namespace net
}  // namespace antimr

#endif  // ANTIMR_NET_WIRE_H_
