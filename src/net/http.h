// Minimal HTTP/1.0 server + client over net::Transport, for the
// coordinator's status surface (/metrics Prometheus text, /status JSON).
//
// Riding on Transport instead of raw sockets buys two things: the endpoint
// works identically on the in-process loopback transport (so tests exercise
// it without binding ports) and on TCP (so curl and Prometheus can scrape a
// real cluster). Traffic deliberately bypasses net/frame.h — the frame
// layer stays the single *job* wire-byte counting site, and scraping the
// metrics must not perturb the numbers being scraped.
//
// Scope is exactly what a status endpoint needs and nothing more: GET only,
// exact-path handler dispatch, one request per connection ("Connection:
// close"), no keep-alive, no chunked encoding, 8 KB request-header cap.
#ifndef ANTIMR_NET_HTTP_H_
#define ANTIMR_NET_HTTP_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/transport.h"

namespace antimr {
namespace net {

/// \brief Serves registered GET handlers over a transport.
///
/// One accept thread plus one handler thread per connection, SegmentServer
/// style. Handlers run on connection threads and must be thread-safe.
class HttpServer {
 public:
  /// Returns the response body; may set *content_type (defaults to
  /// "text/plain; charset=utf-8").
  using Handler = std::function<std::string(std::string* content_type)>;

  /// `transport` is borrowed and must outlive the server.
  explicit HttpServer(Transport* transport);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register an exact-path handler ("/status"). Call before Start.
  void Handle(const std::string& path, Handler handler);

  /// Listen on `addr` ("" = auto / ephemeral) and start accepting.
  Status Start(const std::string& addr);

  /// The resolved address clients dial.
  const std::string& addr() const { return addr_; }

  void Stop();

 private:
  void AcceptLoop();
  void Serve(Conn* conn);

  Transport* transport_;
  std::string addr_;
  std::map<std::string, Handler> handlers_;
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::thread> conn_threads_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

/// Blocking GET of `path` from the HttpServer at `addr`; *body receives the
/// response entity. Non-200 responses come back as IOError carrying the
/// status line.
Status HttpGet(Transport* transport, const std::string& addr,
               const std::string& path, std::string* body);

}  // namespace net
}  // namespace antimr

#endif  // ANTIMR_NET_HTTP_H_
