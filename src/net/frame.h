// Message framing over a Conn, and THE single place wire traffic is
// counted. Every RPC and every shuffled segment byte — loopback or TCP,
// pipelined or barrier shuffle — moves through WriteFrame/ReadFrame, so the
// global antimr_net_* counters (and every shuffle_bytes figure derived from
// frame payloads) measure the same thing at the same boundary in all modes.
//
// Wire layout of one frame:
//
//   fixed32  payload length
//   u8       frame type (net/wire.h MsgType)
//   fixed32  crc32(payload)
//   payload  `length` bytes
//
// A CRC mismatch surfaces as Status::IOError — deliberately the *transient*
// class, not Corruption: a corrupted frame means the wire flaked, and the
// retry layer re-requesting the data is exactly the right response (the
// underlying segment blocks carry their own CRCs against storage rot).
#ifndef ANTIMR_NET_FRAME_H_
#define ANTIMR_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/transport.h"

namespace antimr {
namespace net {

/// Frame header bytes on the wire (length + type + crc).
constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;

/// Upper bound on a single frame's payload; a peer announcing more is
/// treated as a corrupt/hostile stream, not an allocation request.
constexpr uint32_t kMaxFramePayload = 256u * 1024 * 1024;

/// Process-wide wire-traffic counters, all incremented only by
/// WriteFrame/ReadFrame. Exported through the global MetricsRegistry as
/// antimr_net_bytes_sent_total, antimr_net_bytes_received_total,
/// antimr_net_frames_sent_total, antimr_net_frames_received_total.
struct WireCounters {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
};

/// Snapshot the current counter values (benches diff two snapshots to get a
/// run's wire traffic).
WireCounters SnapshotWireCounters();

/// Send one frame. Thread-compatible: callers serialize concurrent writers
/// on one Conn with their own mutex.
Status WriteFrame(Conn* conn, uint8_t type, const std::string& payload);

/// Receive one frame into *type / *payload. A clean peer close at a frame
/// boundary returns IOError("connection closed"); a close mid-frame returns
/// IOError("short read"); a CRC mismatch returns IOError("frame crc
/// mismatch ...").
Status ReadFrame(Conn* conn, uint8_t* type, std::string* payload);

}  // namespace net
}  // namespace antimr

#endif  // ANTIMR_NET_FRAME_H_
