#include "net/shuffle_service.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "io/throttled_env.h"
#include "net/frame.h"
#include "net/wire.h"
#include "obs/federation.h"
#include "obs/trace.h"

namespace antimr {
namespace net {

namespace {
/// Segment bytes per FetchChunk frame. Matches the pre-transport fetch
/// granularity (and the segment block size), so the simulated-bandwidth
/// sleeps happen on the same cadence as before.
constexpr size_t kFetchChunkBytes = 64 * 1024;
}  // namespace

SegmentServer::SegmentServer(Transport* transport, Env* env)
    : transport_(transport), env_(env) {}

SegmentServer::~SegmentServer() { Stop(); }

Status SegmentServer::Start(const std::string& addr) {
  ANTIMR_RETURN_NOT_OK(transport_->Listen(addr, &listener_));
  addr_ = listener_->addr();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SegmentServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listener_ != nullptr) listener_->Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->Close();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
}

void SegmentServer::AcceptLoop() {
  while (true) {
    std::unique_ptr<Conn> conn;
    if (!listener_->Accept(&conn).ok()) return;  // closed
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      conn->Close();
      return;
    }
    Conn* raw = conn.get();
    conns_.push_back(std::move(conn));
    handlers_.emplace_back([this, raw] { Serve(raw); });
  }
}

void SegmentServer::Serve(Conn* conn) {
  std::string payload;
  char scratch[kFetchChunkBytes];
  while (true) {
    uint8_t type = 0;
    if (!ReadFrame(conn, &type, &payload).ok()) break;  // peer gone
    if (type != kFetchReq) break;  // protocol violation: drop the conn
    FetchReqMsg req;
    if (!DecodeFetchReq(payload, &req).ok()) break;
    bool conn_lost = false;
    {
      // Inner scope: the serve span must close before the post-request
      // trace drain below, or the shipped chunk would hold an unbalanced B.
      ANTIMR_TRACE_SPAN_DYN(
          "rpc", req.origin.empty()
                     ? "serve_segment:" + req.file
                     : "serve_segment:" + req.file + "<-" + req.origin);
      if (obs::kTraceCompiled && obs::TraceEnabled() && req.flow_id != 0) {
        // Arrow head of the reducer's FlowStart: remote fetches render as
        // flows from the reduce task's lane into this server's lane.
        obs::Tracer::Global().FlowEnd("shuffle", "shuffle_fetch",
                                      req.flow_id);
      }

      std::unique_ptr<SequentialFile> file;
      Status st = env_->NewSequentialFile(req.file, &file);
      std::string chunk_payload;
      while (st.ok()) {
        Slice chunk;
        st = file->Read(sizeof(scratch), &chunk, scratch);
        if (!st.ok() || chunk.empty()) break;
        chunk_payload.assign(chunk.data(), chunk.size());
        if (!WriteFrame(conn, kFetchChunk, chunk_payload).ok()) {
          conn_lost = true;
          break;
        }
      }
      if (conn_lost) {
        // fall through to the trace drain, then drop the conn
      } else if (st.ok()) {
        conn_lost = !WriteFrame(conn, kFetchEnd, std::string()).ok();
      } else {
        ANTIMR_LOG(kDebug) << "serve_segment " << req.file
                           << " failed: " << st.ToString();
        FetchErrorMsg err;
        err.status_code = static_cast<int32_t>(st.code());
        err.status_msg = st.message();
        EncodeFetchError(err, &chunk_payload);
        conn_lost = !WriteFrame(conn, kFetchError, chunk_payload).ok();
      }
    }
    // Hand this request's spans to the owner (engine::Worker) so remote
    // serve activity reaches the coordinator's merged trace; handler
    // threads are otherwise invisible to task-boundary draining.
    if (obs::kTraceCompiled && obs::TraceEnabled() && trace_sink_) {
      std::string trace_chunk;
      obs::Tracer::Global().DrainThisThread(&trace_chunk);
      if (!trace_chunk.empty()) trace_sink_(std::move(trace_chunk));
    }
    if (conn_lost) break;
  }
}

ShuffleClient::ShuffleClient(Transport* transport, double network_mb_per_s)
    : transport_(transport), network_mb_per_s_(network_mb_per_s) {}

ShuffleClient::~ShuffleClient() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [addr, conns] : idle_) {
    for (auto& conn : conns) conn->Close();
  }
}

Status ShuffleClient::Fetch(const std::string& addr, const std::string& file,
                            FetchedSegment* out) {
  *out = FetchedSegment();
  ScopedTimer t(&out->fetch_nanos);
  out->file = file;
  ANTIMR_TRACE_SPAN_DYN("rpc", "fetch_segment:" + file);
  uint64_t flow_id = 0;
  if (obs::kTraceCompiled && obs::TraceEnabled()) {
    // Tail of a flow arrow into the serving worker's lane; the id rides in
    // the FetchReq and the server records the matching FlowEnd.
    flow_id = obs::NextFlowId();
    obs::Tracer::Global().FlowStart("shuffle", "shuffle_fetch", flow_id);
  }

  std::unique_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(addr);
    if (it != idle_.end() && !it->second.empty()) {
      conn = std::move(it->second.back());
      it->second.pop_back();
    }
  }
  bool pooled = conn != nullptr;
  if (!pooled) ANTIMR_RETURN_NOT_OK(transport_->Dial(addr, &conn));

  bool server_reported = false;
  Status st = FetchOnce(conn.get(), file, flow_id, out, &server_reported);
  if (!st.ok() && pooled && !server_reported) {
    // A pooled conn may have died while idle (server restart, worker
    // crash); retry exactly once on a fresh dial before reporting. Only
    // conn-level failures qualify — an error the server answered with
    // arrived over a healthy conn and must surface to the task retry
    // layer, not be masked by a second request.
    out->frames.clear();
    ANTIMR_RETURN_NOT_OK(transport_->Dial(addr, &conn));
    pooled = false;
    st = FetchOnce(conn.get(), file, flow_id, out, &server_reported);
  }
  if (!st.ok()) {
    ANTIMR_LOG(kDebug) << "fetch " << file << " from " << addr
                       << " failed: " << st.ToString();
    // Whatever the wire said, a failed fetch is retryable: the retry layer
    // either re-fetches or re-places the producing map task.
    return st.IsTransient() ? st : Status::IOError(st.ToString());
  }
  out->fetched_bytes = out->frames.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    idle_[addr].push_back(std::move(conn));
  }
  return Status::OK();
}

Status ShuffleClient::FetchOnce(Conn* conn, const std::string& file,
                                uint64_t flow_id, FetchedSegment* out,
                                bool* server_reported) {
  *server_reported = false;
  std::string payload;
  FetchReqMsg req;
  req.file = file;
  req.flow_id = flow_id;
  req.origin = trace_origin_;
  EncodeFetchReq(req, &payload);
  ANTIMR_RETURN_NOT_OK(WriteFrame(conn, kFetchReq, payload));
  while (true) {
    uint8_t type = 0;
    ANTIMR_RETURN_NOT_OK(ReadFrame(conn, &type, &payload));
    switch (type) {
      case kFetchChunk:
        out->frames.append(payload);
        // Simulated shuffle bandwidth, paid per chunk as it arrives — the
        // same cadence the pre-transport FetchSegmentFrames used.
        SleepForBytes(payload.size(), network_mb_per_s_);
        break;
      case kFetchEnd:
        return Status::OK();
      case kFetchError: {
        *server_reported = true;
        FetchErrorMsg err;
        ANTIMR_RETURN_NOT_OK(DecodeFetchError(payload, &err));
        return StatusFromWire(err.status_code,
                              "fetch " + file + ": " + err.status_msg);
      }
      default:
        return Status::IOError("unexpected frame type " +
                               std::to_string(type) + " during fetch");
    }
  }
}

}  // namespace net
}  // namespace antimr
