#include "net/frame.h"

#include "codec/crc32.h"
#include "common/coding.h"
#include "common/slice.h"
#include "obs/metrics_registry.h"

namespace antimr {
namespace net {

namespace {

struct Counters {
  obs::Counter* bytes_sent;
  obs::Counter* bytes_received;
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Histogram* frame_sent_bytes;
  obs::Histogram* frame_received_bytes;
};

Counters& GlobalCounters() {
  static Counters c = {
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_net_bytes_sent_total",
          "Wire bytes sent through the frame layer (headers + payloads)"),
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_net_bytes_received_total",
          "Wire bytes received through the frame layer (headers + payloads)"),
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_net_frames_sent_total", "Frames sent"),
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_net_frames_received_total", "Frames received"),
      obs::MetricsRegistry::Global().GetHistogram(
          "antimr_net_frame_sent_bytes",
          "Per-frame wire size sent (header + payload)"),
      obs::MetricsRegistry::Global().GetHistogram(
          "antimr_net_frame_received_bytes",
          "Per-frame wire size received (header + payload)"),
  };
  return c;
}

}  // namespace

WireCounters SnapshotWireCounters() {
  Counters& c = GlobalCounters();
  WireCounters snap;
  snap.bytes_sent = c.bytes_sent->value();
  snap.bytes_received = c.bytes_received->value();
  snap.frames_sent = c.frames_sent->value();
  snap.frames_received = c.frames_received->value();
  return snap;
}

Status WriteFrame(Conn* conn, uint8_t type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string wire;
  wire.reserve(kFrameHeaderBytes + payload.size());
  PutFixed32(&wire, static_cast<uint32_t>(payload.size()));
  wire.push_back(static_cast<char>(type));
  PutFixed32(&wire, Crc32(0, Slice(payload)));
  wire.append(payload);
  ANTIMR_RETURN_NOT_OK(conn->Write(wire));
  Counters& c = GlobalCounters();
  c.bytes_sent->Inc(wire.size());
  c.frames_sent->Inc();
  c.frame_sent_bytes->Observe(wire.size());
  return Status::OK();
}

Status ReadFrame(Conn* conn, uint8_t* type, std::string* payload) {
  std::string header;
  ANTIMR_RETURN_NOT_OK(conn->ReadFull(kFrameHeaderBytes, &header));
  Slice h(header);
  uint32_t len = 0;
  if (!GetFixed32(&h, &len)) return Status::IOError("bad frame header");
  *type = static_cast<uint8_t>(h[0]);
  h.RemovePrefix(1);
  uint32_t want_crc = 0;
  if (!GetFixed32(&h, &want_crc)) return Status::IOError("bad frame header");
  if (len > kMaxFramePayload) {
    return Status::IOError("frame length " + std::to_string(len) +
                           " exceeds limit (corrupt stream?)");
  }
  payload->clear();
  if (len > 0) ANTIMR_RETURN_NOT_OK(conn->ReadFull(len, payload));
  const uint32_t got_crc = Crc32(0, Slice(*payload));
  if (got_crc != want_crc) {
    return Status::IOError("frame crc mismatch from " + conn->peer());
  }
  Counters& c = GlobalCounters();
  c.bytes_received->Inc(kFrameHeaderBytes + payload->size());
  c.frames_received->Inc();
  c.frame_received_bytes->Observe(kFrameHeaderBytes + payload->size());
  return Status::OK();
}

}  // namespace net
}  // namespace antimr
