#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace antimr {
namespace net {

namespace {

constexpr size_t kMaxHeaderBytes = 8 * 1024;

/// Read from `conn` until the CRLFCRLF header terminator (inclusive) or the
/// size cap. Byte-at-a-time is fine at status-endpoint request rates and
/// avoids buffering past the header into the (nonexistent) request body.
Status ReadHeader(Conn* conn, std::string* header) {
  header->clear();
  std::string byte;
  while (header->size() < kMaxHeaderBytes) {
    ANTIMR_RETURN_NOT_OK(conn->ReadFull(1, &byte));
    header->push_back(byte[0]);
    if (header->size() >= 4 &&
        header->compare(header->size() - 4, 4, "\r\n\r\n") == 0) {
      return Status::OK();
    }
  }
  return Status::IOError("http header exceeds " +
                         std::to_string(kMaxHeaderBytes) + " bytes");
}

std::string StatusResponse(const char* status_line, const std::string& body,
                           const std::string& content_type) {
  std::string out;
  out.reserve(body.size() + 128);
  out.append("HTTP/1.0 ").append(status_line).append("\r\n");
  out.append("Content-Type: ").append(content_type).append("\r\n");
  out.append("Content-Length: ").append(std::to_string(body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace

HttpServer::HttpServer(Transport* transport) : transport_(transport) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start(const std::string& addr) {
  ANTIMR_RETURN_NOT_OK(transport_->Listen(addr, &listener_));
  addr_ = listener_->addr();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listener_ != nullptr) listener_->Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->Close();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::AcceptLoop() {
  while (true) {
    std::unique_ptr<Conn> conn;
    if (!listener_->Accept(&conn).ok()) return;  // closed
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      conn->Close();
      return;
    }
    Conn* raw = conn.get();
    conns_.push_back(std::move(conn));
    conn_threads_.emplace_back([this, raw] { Serve(raw); });
  }
}

void HttpServer::Serve(Conn* conn) {
  std::string header;
  if (!ReadHeader(conn, &header).ok()) {
    conn->Close();
    return;
  }
  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = header.find("\r\n");
  const std::string line = header.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  std::string response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = StatusResponse("400 Bad Request", "bad request line\n",
                              "text/plain; charset=utf-8");
  } else if (line.substr(0, sp1) != "GET") {
    response = StatusResponse("405 Method Not Allowed", "GET only\n",
                              "text/plain; charset=utf-8");
  } else {
    // Strip any query string: /status?x=y dispatches as /status.
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);
    const auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      response = StatusResponse("404 Not Found", "no handler for " + path +
                                "\n", "text/plain; charset=utf-8");
    } else {
      std::string content_type = "text/plain; charset=utf-8";
      const std::string body = it->second(&content_type);
      response = StatusResponse("200 OK", body, content_type);
    }
  }
  conn->Write(response);  // best effort; the conn closes either way
  conn->Close();
}

Status HttpGet(Transport* transport, const std::string& addr,
               const std::string& path, std::string* body) {
  body->clear();
  std::unique_ptr<Conn> conn;
  ANTIMR_RETURN_NOT_OK(transport->Dial(addr, &conn));
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + addr +
      "\r\nConnection: close\r\n\r\n";
  ANTIMR_RETURN_NOT_OK(conn->Write(request));
  std::string header;
  ANTIMR_RETURN_NOT_OK(ReadHeader(conn.get(), &header));
  const size_t line_end = header.find("\r\n");
  const std::string status_line = header.substr(0, line_end);
  // "HTTP/1.0 200 OK" — the code sits after the first space.
  const size_t sp = status_line.find(' ');
  if (sp == std::string::npos ||
      status_line.compare(sp + 1, 4, "200 ") != 0) {
    return Status::IOError("http " + path + ": " + status_line);
  }
  // Locate Content-Length (headers are ASCII; compare case-insensitively).
  size_t content_length = std::string::npos;
  size_t pos = line_end + 2;
  while (pos < header.size()) {
    size_t eol = header.find("\r\n", pos);
    if (eol == std::string::npos || eol == pos) break;  // blank line = done
    std::string h = header.substr(pos, eol - pos);
    const size_t colon = h.find(':');
    if (colon != std::string::npos) {
      std::string name = h.substr(0, colon);
      std::transform(name.begin(), name.end(), name.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
      if (name == "content-length") {
        size_t v = 0;
        bool any = false;
        for (size_t i = colon + 1; i < h.size(); ++i) {
          const char c = h[i];
          if (c == ' ') continue;
          if (c < '0' || c > '9') break;
          v = v * 10 + static_cast<size_t>(c - '0');
          any = true;
        }
        if (any) content_length = v;
      }
    }
    pos = eol + 2;
  }
  if (content_length == std::string::npos) {
    return Status::IOError("http " + path + ": missing Content-Length");
  }
  if (content_length > 0) {
    ANTIMR_RETURN_NOT_OK(conn->ReadFull(content_length, body));
  }
  conn->Close();
  return Status::OK();
}

}  // namespace net
}  // namespace antimr
