// Byte-stream transport abstraction under the distributed engine: a Conn is
// a reliable, ordered, bidirectional byte pipe; a Listener accepts Conns; a
// Transport names an implementation. Two implementations exist:
//
//  * loopback — in-process pipes with bounded buffers. Every single-process
//    Executor run shuffles through it, so the framing/accounting code path
//    is exercised by the whole legacy test suite, not just network tests.
//  * tcp — POSIX sockets on localhost/LAN, for real multi-process clusters.
//
// Conns carry no message boundaries; net/frame.h layers length-prefixed
// CRC-framed messages on top, and is the single place wire bytes are
// counted (see net/frame.h).
#ifndef ANTIMR_NET_TRANSPORT_H_
#define ANTIMR_NET_TRANSPORT_H_

#include <memory>
#include <string>

#include "common/status.h"

namespace antimr {
namespace net {

/// \brief One end of an established connection. Blocking I/O.
///
/// Write and ReadFull may be called concurrently from two threads (one
/// reader + one writer); neither is safe for concurrent calls on the same
/// side — callers serialize writers with their own mutex. Close may be
/// called from any thread and unblocks both directions on both ends.
class Conn {
 public:
  virtual ~Conn() = default;

  /// Write all of `data`; partial writes are retried internally.
  virtual Status Write(const std::string& data) = 0;

  /// Read exactly `n` bytes into *out (replacing its contents). A peer
  /// close before any byte arrives returns IOError("connection closed");
  /// a close mid-read returns IOError("short read").
  virtual Status ReadFull(size_t n, std::string* out) = 0;

  /// Shut the connection down in both directions; idempotent.
  virtual void Close() = 0;

  /// Address of the remote end, for logs and error messages.
  virtual std::string peer() const = 0;
};

/// \brief Accepts incoming connections on one address.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Block until a connection arrives. Returns IOError("listener closed")
  /// after Close.
  virtual Status Accept(std::unique_ptr<Conn>* conn) = 0;

  /// Stop accepting and unblock pending Accept calls; idempotent.
  virtual void Close() = 0;

  /// The resolved address peers dial, e.g. "127.0.0.1:41873" after
  /// listening on port 0, or "loopback:3" for an auto-named loopback.
  virtual std::string addr() const = 0;
};

/// \brief Factory for Listeners and Conns of one wire implementation.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Bind `addr` and start accepting. Loopback: "" or "*" auto-names the
  /// endpoint. TCP: "host:port" with port 0 for an ephemeral port; the
  /// Listener's addr() reports the resolved one.
  virtual Status Listen(const std::string& addr,
                        std::unique_ptr<Listener>* listener) = 0;

  /// Connect to a listening address.
  virtual Status Dial(const std::string& addr,
                      std::unique_ptr<Conn>* conn) = 0;

  /// "loopback" or "tcp" — stamped into bench reports.
  virtual const char* name() const = 0;
};

/// In-process transport. Addresses are scoped to this instance: two
/// loopback transports cannot reach each other (tests use one shared
/// instance for a whole simulated cluster).
std::unique_ptr<Transport> NewLoopbackTransport();

/// TCP sockets. Thread-safe; one instance serves a whole process.
std::unique_ptr<Transport> NewTcpTransport();

}  // namespace net
}  // namespace antimr

#endif  // ANTIMR_NET_TRANSPORT_H_
