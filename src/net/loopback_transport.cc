#include "net/transport.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

namespace antimr {
namespace net {

namespace {

/// One direction of a loopback connection: a bounded in-memory byte queue.
/// The cap gives the same backpressure a socket send buffer would — a fast
/// shuffle server cannot run arbitrarily far ahead of a slow reducer.
struct Pipe {
  static constexpr size_t kCapacity = 1 << 20;  // 1 MiB

  std::mutex mu;
  std::condition_variable cv;
  std::string buffer;
  bool closed = false;

  Status Write(const std::string& data) {
    size_t pos = 0;
    std::unique_lock<std::mutex> lock(mu);
    while (pos < data.size()) {
      cv.wait(lock, [&] { return closed || buffer.size() < kCapacity; });
      if (closed) return Status::IOError("connection closed");
      const size_t room = kCapacity - buffer.size();
      const size_t n = std::min(room, data.size() - pos);
      buffer.append(data, pos, n);
      pos += n;
      cv.notify_all();
    }
    return Status::OK();
  }

  Status ReadFull(size_t n, std::string* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu);
    while (out->size() < n) {
      cv.wait(lock, [&] { return closed || !buffer.empty(); });
      if (buffer.empty()) {  // closed and drained
        return out->empty() ? Status::IOError("connection closed")
                            : Status::IOError("short read");
      }
      const size_t take = std::min(n - out->size(), buffer.size());
      out->append(buffer, 0, take);
      buffer.erase(0, take);
      cv.notify_all();
    }
    return Status::OK();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }
};

class LoopbackConn : public Conn {
 public:
  LoopbackConn(std::shared_ptr<Pipe> read_from, std::shared_ptr<Pipe> write_to,
               std::string peer)
      : read_from_(std::move(read_from)),
        write_to_(std::move(write_to)),
        peer_(std::move(peer)) {}

  ~LoopbackConn() override { Close(); }

  Status Write(const std::string& data) override {
    return write_to_->Write(data);
  }

  Status ReadFull(size_t n, std::string* out) override {
    return read_from_->ReadFull(n, out);
  }

  void Close() override {
    // Closing either direction wakes both endpoints: the peer's reads see
    // EOF once the buffer drains, its writes fail immediately.
    read_from_->Close();
    write_to_->Close();
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<Pipe> read_from_;
  std::shared_ptr<Pipe> write_to_;
  std::string peer_;
};

struct PendingConn {
  std::shared_ptr<Pipe> to_server;
  std::shared_ptr<Pipe> to_client;
};

/// The server side of one listening address: a queue of dialed-but-not-yet-
/// accepted connections. Shared (via shared_ptr) between the Listener that
/// drains it and any Dial call that holds a reference, so a dial racing a
/// listener teardown sees "closed" instead of a dangling pointer.
struct AcceptQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingConn> pending;
  bool closed = false;

  bool Enqueue(PendingConn p) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return false;
    pending.push_back(std::move(p));
    cv.notify_all();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    // Dials that raced with Close: fail their conns so the dialer's first
    // read errors out instead of hanging.
    for (PendingConn& p : pending) {
      p.to_server->Close();
      p.to_client->Close();
    }
    pending.clear();
    cv.notify_all();
  }
};

/// Shared address book of one loopback transport instance.
struct Hub {
  std::mutex mu;
  uint64_t next_addr = 0;
  std::map<std::string, std::shared_ptr<AcceptQueue>> queues;
};

class LoopbackListener : public Listener {
 public:
  LoopbackListener(std::shared_ptr<Hub> hub, std::string addr,
                   std::shared_ptr<AcceptQueue> queue)
      : hub_(std::move(hub)),
        addr_(std::move(addr)),
        queue_(std::move(queue)) {}

  ~LoopbackListener() override { Close(); }

  Status Accept(std::unique_ptr<Conn>* conn) override {
    std::unique_lock<std::mutex> lock(queue_->mu);
    queue_->cv.wait(lock,
                    [&] { return queue_->closed || !queue_->pending.empty(); });
    if (queue_->pending.empty()) return Status::IOError("listener closed");
    PendingConn p = std::move(queue_->pending.front());
    queue_->pending.pop_front();
    *conn = std::make_unique<LoopbackConn>(p.to_server, p.to_client,
                                           "loopback-client");
    return Status::OK();
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> hub_lock(hub_->mu);
      auto it = hub_->queues.find(addr_);
      if (it != hub_->queues.end() && it->second == queue_) {
        hub_->queues.erase(it);
      }
    }
    queue_->Close();
  }

  std::string addr() const override { return addr_; }

 private:
  std::shared_ptr<Hub> hub_;
  std::string addr_;
  std::shared_ptr<AcceptQueue> queue_;
};

class LoopbackTransport : public Transport {
 public:
  LoopbackTransport() : hub_(std::make_shared<Hub>()) {}

  Status Listen(const std::string& addr,
                std::unique_ptr<Listener>* listener) override {
    std::lock_guard<std::mutex> lock(hub_->mu);
    std::string resolved = addr;
    if (resolved.empty() || resolved == "*") {
      resolved = "loopback:" + std::to_string(hub_->next_addr++);
    }
    if (hub_->queues.count(resolved) > 0) {
      return Status::InvalidArgument("loopback address in use: " + resolved);
    }
    auto queue = std::make_shared<AcceptQueue>();
    hub_->queues[resolved] = queue;
    *listener = std::make_unique<LoopbackListener>(hub_, resolved,
                                                   std::move(queue));
    return Status::OK();
  }

  Status Dial(const std::string& addr,
              std::unique_ptr<Conn>* conn) override {
    std::shared_ptr<AcceptQueue> queue;
    {
      std::lock_guard<std::mutex> lock(hub_->mu);
      auto it = hub_->queues.find(addr);
      if (it == hub_->queues.end()) {
        return Status::IOError("connection refused: " + addr);
      }
      queue = it->second;
    }
    PendingConn p;
    p.to_server = std::make_shared<Pipe>();
    p.to_client = std::make_shared<Pipe>();
    auto client = std::make_unique<LoopbackConn>(p.to_client, p.to_server,
                                                 addr);
    if (!queue->Enqueue(std::move(p))) {
      return Status::IOError("connection refused: " + addr);
    }
    *conn = std::move(client);
    return Status::OK();
  }

  const char* name() const override { return "loopback"; }

 private:
  std::shared_ptr<Hub> hub_;
};

}  // namespace

std::unique_ptr<Transport> NewLoopbackTransport() {
  return std::make_unique<LoopbackTransport>();
}

}  // namespace net
}  // namespace antimr
