#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace antimr {
namespace net {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Parse "host:port" into a sockaddr_in. Only IPv4 dotted-quad hosts (and
/// the localhost name) are supported — the cluster tooling runs on
/// 127.0.0.1, and keeping resolution out of the transport avoids blocking
/// DNS calls on task-critical paths.
Status ParseAddr(const std::string& addr, sockaddr_in* out) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("tcp address must be host:port: " + addr);
  }
  std::string host = addr.substr(0, colon);
  const std::string port_str = addr.substr(colon + 1);
  if (host.empty() || host == "localhost" || host == "*") host = "127.0.0.1";
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    return Status::InvalidArgument("bad tcp port: " + addr);
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host: " + addr);
  }
  return Status::OK();
}

std::string FormatAddr(const sockaddr_in& sa) {
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &sa.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(sa.sin_port));
}

class TcpConn : public Conn {
 public:
  TcpConn(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  ~TcpConn() override {
    Close();
    // The fd is released only here, after every user of this Conn is gone,
    // so a concurrent ReadFull can never race a kernel fd-number reuse.
    ::close(fd_);
  }

  Status Write(const std::string& data) override {
    size_t pos = 0;
    while (pos < data.size()) {
      // MSG_NOSIGNAL: a peer reset must surface as a Status, not SIGPIPE.
      const ssize_t n = ::send(fd_, data.data() + pos, data.size() - pos,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("send"));
      }
      pos += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status ReadFull(size_t n, std::string* out) override {
    out->clear();
    out->resize(n);
    size_t pos = 0;
    while (pos < n) {
      const ssize_t got = ::recv(fd_, out->data() + pos, n - pos, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("recv"));
      }
      if (got == 0) {
        return pos == 0 ? Status::IOError("connection closed")
                        : Status::IOError("short read");
      }
      pos += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  void Close() override {
    bool expected = false;
    if (closed_.compare_exchange_strong(expected, true)) {
      // shutdown (not close) so threads blocked in recv/send wake with
      // EOF/EPIPE while the fd number stays reserved until the destructor.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  std::string peer() const override { return peer_; }

 private:
  const int fd_;
  std::string peer_;
  std::atomic<bool> closed_{false};
};

class TcpListener : public Listener {
 public:
  TcpListener(int fd, std::string addr) : fd_(fd), addr_(std::move(addr)) {}

  ~TcpListener() override {
    Close();
    ::close(fd_);
  }

  Status Accept(std::unique_ptr<Conn>* conn) override {
    while (true) {
      sockaddr_in peer_sa;
      socklen_t len = sizeof(peer_sa);
      const int fd =
          ::accept(fd_, reinterpret_cast<sockaddr*>(&peer_sa), &len);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (closed_.load()) return Status::IOError("listener closed");
        return Status::IOError(ErrnoMessage("accept"));
      }
      if (closed_.load()) {
        ::close(fd);
        return Status::IOError("listener closed");
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *conn = std::make_unique<TcpConn>(fd, FormatAddr(peer_sa));
      return Status::OK();
    }
  }

  void Close() override {
    bool expected = false;
    if (closed_.compare_exchange_strong(expected, true)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  std::string addr() const override { return addr_; }

 private:
  const int fd_;
  std::string addr_;
  std::atomic<bool> closed_{false};
};

class TcpTransport : public Transport {
 public:
  Status Listen(const std::string& addr,
                std::unique_ptr<Listener>* listener) override {
    sockaddr_in sa;
    ANTIMR_RETURN_NOT_OK(ParseAddr(addr.empty() ? "127.0.0.1:0" : addr, &sa));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError(ErrnoMessage("socket"));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const Status st = Status::IOError(ErrnoMessage("bind"));
      ::close(fd);
      return st;
    }
    if (::listen(fd, 64) != 0) {
      const Status st = Status::IOError(ErrnoMessage("listen"));
      ::close(fd);
      return st;
    }
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status st = Status::IOError(ErrnoMessage("getsockname"));
      ::close(fd);
      return st;
    }
    *listener = std::make_unique<TcpListener>(fd, FormatAddr(bound));
    return Status::OK();
  }

  Status Dial(const std::string& addr,
              std::unique_ptr<Conn>* conn) override {
    sockaddr_in sa;
    ANTIMR_RETURN_NOT_OK(ParseAddr(addr, &sa));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError(ErrnoMessage("socket"));
    while (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::IOError("connect " + addr + ": " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    *conn = std::make_unique<TcpConn>(fd, addr);
    return Status::OK();
  }

  const char* name() const override { return "tcp"; }
};

}  // namespace

std::unique_ptr<Transport> NewTcpTransport() {
  return std::make_unique<TcpTransport>();
}

}  // namespace net
}  // namespace antimr
