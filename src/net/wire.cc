#include "net/wire.h"

#include <cstring>

#include "common/coding.h"

namespace antimr {
namespace net {

namespace {

Status Malformed(const char* what) {
  return Status::IOError(std::string("malformed wire message: ") + what);
}

void PutString(std::string* out, const std::string& s) {
  PutLengthPrefixed(out, Slice(s));
}

bool GetString(Slice* in, std::string* s) {
  Slice v;
  if (!GetLengthPrefixed(in, &v)) return false;
  s->assign(v.data(), v.size());
  return true;
}

void PutParams(std::string* out, const JobParams& params) {
  PutVarint64(out, params.size());
  for (const auto& [k, v] : params) {
    PutString(out, k);
    PutString(out, v);
  }
}

bool GetParams(Slice* in, JobParams* params) {
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return false;
  params->clear();
  params->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string k, v;
    if (!GetString(in, &k) || !GetString(in, &v)) return false;
    params->emplace_back(std::move(k), std::move(v));
  }
  return true;
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(out, bits);
}

bool GetDouble(Slice* in, double* v) {
  uint64_t bits = 0;
  if (!GetFixed64(in, &bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

}  // namespace

void EncodeRegister(const RegisterMsg& msg, std::string* out) {
  out->clear();
  PutString(out, msg.worker_name);
  PutString(out, msg.shuffle_addr);
  PutVarint32(out, msg.slots);
}

Status DecodeRegister(const std::string& payload, RegisterMsg* msg) {
  Slice in(payload);
  if (!GetString(&in, &msg->worker_name) ||
      !GetString(&in, &msg->shuffle_addr) ||
      !GetVarint32(&in, &msg->slots)) {
    return Malformed("Register");
  }
  return Status::OK();
}

void EncodeRegisterAck(const RegisterAckMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, msg.worker_id);
}

Status DecodeRegisterAck(const std::string& payload, RegisterAckMsg* msg) {
  Slice in(payload);
  if (!GetVarint32(&in, &msg->worker_id)) return Malformed("RegisterAck");
  return Status::OK();
}

void EncodeHeartbeat(const HeartbeatMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, msg.worker_id);
  PutVarint64(out, msg.seq);
  PutString(out, msg.metrics_snapshot);
  PutVarint64(out, msg.task_progress.size());
  for (const TaskProgress& p : msg.task_progress) {
    PutVarint64(out, p.rpc_id);
    PutVarint32(out, p.permille);
  }
}

Status DecodeHeartbeat(const std::string& payload, HeartbeatMsg* msg) {
  Slice in(payload);
  uint64_t num_progress = 0;
  if (!GetVarint32(&in, &msg->worker_id) || !GetVarint64(&in, &msg->seq) ||
      !GetString(&in, &msg->metrics_snapshot) ||
      !GetVarint64(&in, &num_progress)) {
    return Malformed("Heartbeat");
  }
  msg->task_progress.clear();
  msg->task_progress.reserve(num_progress);
  for (uint64_t i = 0; i < num_progress; ++i) {
    TaskProgress p;
    if (!GetVarint64(&in, &p.rpc_id) || !GetVarint32(&in, &p.permille)) {
      return Malformed("Heartbeat progress");
    }
    msg->task_progress.push_back(p);
  }
  return Status::OK();
}

void EncodeCancelTask(const CancelTaskMsg& msg, std::string* out) {
  out->clear();
  PutVarint64(out, msg.rpc_id);
}

Status DecodeCancelTask(const std::string& payload, CancelTaskMsg* msg) {
  Slice in(payload);
  if (!GetVarint64(&in, &msg->rpc_id)) return Malformed("CancelTask");
  return Status::OK();
}

void EncodeTaskAssign(const TaskAssignMsg& msg, std::string* out) {
  out->clear();
  PutVarint64(out, msg.rpc_id);
  out->push_back(static_cast<char>(msg.kind));
  PutString(out, msg.job_name);
  PutParams(out, msg.params);
  PutString(out, msg.job_id);
  PutVarint32(out, msg.task_index);
  PutVarint32(out, msg.attempt);
  PutString(out, msg.split_records);
  PutVarint64(out, msg.segments.size());
  for (const SegmentRef& ref : msg.segments) {
    PutString(out, ref.addr);
    PutString(out, ref.file);
  }
  out->push_back(msg.collect_output ? 1 : 0);
  PutDouble(out, msg.network_mb_per_s);
  PutVarint32(out, msg.readahead_blocks);
  out->push_back(msg.trace_enabled ? 1 : 0);
}

Status DecodeTaskAssign(const std::string& payload, TaskAssignMsg* msg) {
  Slice in(payload);
  if (!GetVarint64(&in, &msg->rpc_id) || in.empty()) {
    return Malformed("TaskAssign");
  }
  msg->kind = static_cast<TaskKind>(in[0]);
  in.RemovePrefix(1);
  uint64_t num_segments = 0;
  if (!GetString(&in, &msg->job_name) || !GetParams(&in, &msg->params) ||
      !GetString(&in, &msg->job_id) ||
      !GetVarint32(&in, &msg->task_index) ||
      !GetVarint32(&in, &msg->attempt) ||
      !GetString(&in, &msg->split_records) ||
      !GetVarint64(&in, &num_segments)) {
    return Malformed("TaskAssign");
  }
  msg->segments.clear();
  msg->segments.reserve(num_segments);
  for (uint64_t i = 0; i < num_segments; ++i) {
    SegmentRef ref;
    if (!GetString(&in, &ref.addr) || !GetString(&in, &ref.file)) {
      return Malformed("TaskAssign segments");
    }
    msg->segments.push_back(std::move(ref));
  }
  if (in.empty()) return Malformed("TaskAssign tail");
  msg->collect_output = in[0] != 0;
  in.RemovePrefix(1);
  if (!GetDouble(&in, &msg->network_mb_per_s) ||
      !GetVarint32(&in, &msg->readahead_blocks) || in.empty()) {
    return Malformed("TaskAssign tail");
  }
  msg->trace_enabled = in[0] != 0;
  in.RemovePrefix(1);
  return Status::OK();
}

void EncodeTaskResult(const TaskResultMsg& msg, std::string* out) {
  out->clear();
  PutVarint64(out, msg.rpc_id);
  PutVarint32(out, static_cast<uint32_t>(msg.status_code));
  PutString(out, msg.status_msg);
  PutVarint64(out, msg.segment_files.size());
  for (const std::string& f : msg.segment_files) PutString(out, f);
  PutString(out, msg.output_records);
  PutString(out, msg.metrics);
  PutVarint64(out, msg.cpu_nanos);
  PutString(out, msg.trace_chunk);
}

Status DecodeTaskResult(const std::string& payload, TaskResultMsg* msg) {
  Slice in(payload);
  uint32_t code = 0;
  uint64_t num_files = 0;
  if (!GetVarint64(&in, &msg->rpc_id) || !GetVarint32(&in, &code) ||
      !GetString(&in, &msg->status_msg) || !GetVarint64(&in, &num_files)) {
    return Malformed("TaskResult");
  }
  msg->status_code = static_cast<int32_t>(code);
  msg->segment_files.clear();
  msg->segment_files.reserve(num_files);
  for (uint64_t i = 0; i < num_files; ++i) {
    std::string f;
    if (!GetString(&in, &f)) return Malformed("TaskResult files");
    msg->segment_files.push_back(std::move(f));
  }
  if (!GetString(&in, &msg->output_records) ||
      !GetString(&in, &msg->metrics) ||
      !GetVarint64(&in, &msg->cpu_nanos) ||
      !GetString(&in, &msg->trace_chunk)) {
    return Malformed("TaskResult tail");
  }
  return Status::OK();
}

void EncodeFetchReq(const FetchReqMsg& msg, std::string* out) {
  out->clear();
  PutString(out, msg.file);
  PutVarint64(out, msg.flow_id);
  PutString(out, msg.origin);
}

Status DecodeFetchReq(const std::string& payload, FetchReqMsg* msg) {
  Slice in(payload);
  if (!GetString(&in, &msg->file) || !GetVarint64(&in, &msg->flow_id) ||
      !GetString(&in, &msg->origin)) {
    return Malformed("FetchReq");
  }
  return Status::OK();
}

void EncodeTraceChunk(const TraceChunkMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, msg.worker_id);
  PutString(out, msg.chunk);
}

Status DecodeTraceChunk(const std::string& payload, TraceChunkMsg* msg) {
  Slice in(payload);
  if (!GetVarint32(&in, &msg->worker_id) || !GetString(&in, &msg->chunk)) {
    return Malformed("TraceChunk");
  }
  return Status::OK();
}

void EncodeFetchError(const FetchErrorMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(msg.status_code));
  PutString(out, msg.status_msg);
}

Status DecodeFetchError(const std::string& payload, FetchErrorMsg* msg) {
  Slice in(payload);
  uint32_t code = 0;
  if (!GetVarint32(&in, &code) || !GetString(&in, &msg->status_msg)) {
    return Malformed("FetchError");
  }
  msg->status_code = static_cast<int32_t>(code);
  return Status::OK();
}

void EncodeJobId(const JobIdMsg& msg, std::string* out) {
  out->clear();
  PutString(out, msg.job_id);
}

Status DecodeJobId(const std::string& payload, JobIdMsg* msg) {
  Slice in(payload);
  if (!GetString(&in, &msg->job_id)) return Malformed("JobId");
  return Status::OK();
}

void EncodeSubmitJob(const SubmitJobMsg& msg, std::string* out) {
  out->clear();
  PutString(out, msg.pool);
  PutString(out, msg.job_name);
  PutParams(out, msg.params);
  PutString(out, msg.job_id);
  PutVarint32(out, msg.cpu_slots);
  PutVarint64(out, msg.memory_bytes);
  PutVarint32(out, msg.max_task_attempts);
  PutDouble(out, msg.network_mb_per_s);
  PutVarint32(out, msg.readahead_blocks);
  out->push_back(msg.collect_output ? 1 : 0);
  PutVarint64(out, msg.splits.size());
  for (const std::string& s : msg.splits) PutString(out, s);
}

Status DecodeSubmitJob(const std::string& payload, SubmitJobMsg* msg) {
  Slice in(payload);
  if (!GetString(&in, &msg->pool) || !GetString(&in, &msg->job_name) ||
      !GetParams(&in, &msg->params) || !GetString(&in, &msg->job_id) ||
      !GetVarint32(&in, &msg->cpu_slots) ||
      !GetVarint64(&in, &msg->memory_bytes) ||
      !GetVarint32(&in, &msg->max_task_attempts) ||
      !GetDouble(&in, &msg->network_mb_per_s) ||
      !GetVarint32(&in, &msg->readahead_blocks) || in.empty()) {
    return Malformed("SubmitJob");
  }
  msg->collect_output = in[0] != 0;
  in.RemovePrefix(1);
  uint64_t num_splits = 0;
  if (!GetVarint64(&in, &num_splits)) return Malformed("SubmitJob splits");
  msg->splits.clear();
  msg->splits.reserve(num_splits);
  for (uint64_t i = 0; i < num_splits; ++i) {
    std::string s;
    if (!GetString(&in, &s)) return Malformed("SubmitJob splits");
    msg->splits.push_back(std::move(s));
  }
  return Status::OK();
}

void EncodeSubmitJobAck(const SubmitJobAckMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(msg.status_code));
  PutString(out, msg.status_msg);
  PutString(out, msg.job_id);
}

Status DecodeSubmitJobAck(const std::string& payload, SubmitJobAckMsg* msg) {
  Slice in(payload);
  uint32_t code = 0;
  if (!GetVarint32(&in, &code) || !GetString(&in, &msg->status_msg) ||
      !GetString(&in, &msg->job_id)) {
    return Malformed("SubmitJobAck");
  }
  msg->status_code = static_cast<int32_t>(code);
  return Status::OK();
}

namespace {

void PutJobStatusWire(std::string* out, const JobStatusWire& job) {
  PutString(out, job.job_id);
  PutString(out, job.pool);
  PutString(out, job.job_name);
  PutString(out, job.state);
  PutVarint32(out, job.queue_position);
  PutVarint32(out, job.cpu_slots);
  PutVarint64(out, job.maps_total);
  PutVarint64(out, job.maps_done);
  PutVarint64(out, job.reduces_total);
  PutVarint64(out, job.reduces_done);
  PutVarint64(out, job.map_reruns);
  PutVarint32(out, static_cast<uint32_t>(job.status_code));
  PutString(out, job.status_msg);
  PutVarint64(out, job.output_hash);
  PutVarint64(out, job.output_records);
  PutVarint64(out, job.submit_nanos);
  PutVarint64(out, job.start_nanos);
  PutVarint64(out, job.finish_nanos);
  PutVarint64(out, job.dispatch_seq);
}

bool GetJobStatusWire(Slice* in, JobStatusWire* job) {
  uint32_t code = 0;
  if (!GetString(in, &job->job_id) || !GetString(in, &job->pool) ||
      !GetString(in, &job->job_name) || !GetString(in, &job->state) ||
      !GetVarint32(in, &job->queue_position) ||
      !GetVarint32(in, &job->cpu_slots) ||
      !GetVarint64(in, &job->maps_total) ||
      !GetVarint64(in, &job->maps_done) ||
      !GetVarint64(in, &job->reduces_total) ||
      !GetVarint64(in, &job->reduces_done) ||
      !GetVarint64(in, &job->map_reruns) || !GetVarint32(in, &code) ||
      !GetString(in, &job->status_msg) ||
      !GetVarint64(in, &job->output_hash) ||
      !GetVarint64(in, &job->output_records) ||
      !GetVarint64(in, &job->submit_nanos) ||
      !GetVarint64(in, &job->start_nanos) ||
      !GetVarint64(in, &job->finish_nanos) ||
      !GetVarint64(in, &job->dispatch_seq)) {
    return false;
  }
  job->status_code = static_cast<int32_t>(code);
  return true;
}

}  // namespace

void EncodeJobStatusResp(const JobStatusRespMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(msg.status_code));
  PutString(out, msg.status_msg);
  PutJobStatusWire(out, msg.job);
}

Status DecodeJobStatusResp(const std::string& payload, JobStatusRespMsg* msg) {
  Slice in(payload);
  uint32_t code = 0;
  if (!GetVarint32(&in, &code) || !GetString(&in, &msg->status_msg) ||
      !GetJobStatusWire(&in, &msg->job)) {
    return Malformed("JobStatusResp");
  }
  msg->status_code = static_cast<int32_t>(code);
  return Status::OK();
}

void EncodeJobOpAck(const JobOpAckMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(msg.status_code));
  PutString(out, msg.status_msg);
}

Status DecodeJobOpAck(const std::string& payload, JobOpAckMsg* msg) {
  Slice in(payload);
  uint32_t code = 0;
  if (!GetVarint32(&in, &code) || !GetString(&in, &msg->status_msg)) {
    return Malformed("JobOpAck");
  }
  msg->status_code = static_cast<int32_t>(code);
  return Status::OK();
}

void EncodeListJobsResp(const ListJobsRespMsg& msg, std::string* out) {
  out->clear();
  PutVarint32(out, static_cast<uint32_t>(msg.status_code));
  PutString(out, msg.status_msg);
  PutVarint64(out, msg.jobs.size());
  for (const JobStatusWire& job : msg.jobs) PutJobStatusWire(out, job);
}

Status DecodeListJobsResp(const std::string& payload, ListJobsRespMsg* msg) {
  Slice in(payload);
  uint32_t code = 0;
  uint64_t n = 0;
  if (!GetVarint32(&in, &code) || !GetString(&in, &msg->status_msg) ||
      !GetVarint64(&in, &n)) {
    return Malformed("ListJobsResp");
  }
  msg->status_code = static_cast<int32_t>(code);
  msg->jobs.clear();
  msg->jobs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    JobStatusWire job;
    if (!GetJobStatusWire(&in, &job)) return Malformed("ListJobsResp job");
    msg->jobs.push_back(std::move(job));
  }
  return Status::OK();
}

Status StatusFromWire(int32_t code, const std::string& msg) {
  if (code == 0) return Status::OK();
  const auto c = static_cast<Status::Code>(code);
  switch (c) {
    case Status::Code::kInvalidArgument:
    case Status::Code::kNotFound:
    case Status::Code::kIOError:
    case Status::Code::kCorruption:
    case Status::Code::kNotSupported:
    case Status::Code::kResourceExhausted:
    case Status::Code::kInternal:
      return Status(c, msg);
    default:
      return Status::IOError("unknown wire status code " +
                             std::to_string(code) + ": " + msg);
  }
}

void EncodeKVList(const std::vector<KV>& records, std::string* out) {
  out->clear();
  PutVarint64(out, records.size());
  for (const KV& r : records) {
    PutString(out, r.key);
    PutString(out, r.value);
  }
}

Status DecodeKVList(const std::string& payload, std::vector<KV>* records) {
  Slice in(payload);
  uint64_t n = 0;
  if (!GetVarint64(&in, &n)) return Malformed("KVList");
  records->clear();
  records->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    KV r;
    if (!GetString(&in, &r.key) || !GetString(&in, &r.value)) {
      return Malformed("KVList record");
    }
    records->push_back(std::move(r));
  }
  return Status::OK();
}

void EncodeJobMetrics(const JobMetrics& metrics, std::string* out) {
  out->clear();
#define ANTIMR_PUT_FIELD(name) PutVarint64(out, metrics.name);
  ANTIMR_JOB_SUM_FIELDS(ANTIMR_PUT_FIELD)
  ANTIMR_JOB_MAX_FIELDS(ANTIMR_PUT_FIELD)
#undef ANTIMR_PUT_FIELD
#define ANTIMR_PUT_PHASE(name) PutVarint64(out, metrics.cpu.name);
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_PUT_PHASE)
#undef ANTIMR_PUT_PHASE
  PutVarint64(out, metrics.total_cpu_nanos);
  PutVarint64(out, metrics.wall_nanos);
}

Status DecodeJobMetrics(const std::string& payload, JobMetrics* metrics) {
  Slice in(payload);
  *metrics = JobMetrics();
#define ANTIMR_GET_FIELD(name)                  \
  if (!GetVarint64(&in, &metrics->name)) {      \
    return Malformed("JobMetrics");             \
  }
  ANTIMR_JOB_SUM_FIELDS(ANTIMR_GET_FIELD)
  ANTIMR_JOB_MAX_FIELDS(ANTIMR_GET_FIELD)
#undef ANTIMR_GET_FIELD
#define ANTIMR_GET_PHASE(name)                  \
  if (!GetVarint64(&in, &metrics->cpu.name)) {  \
    return Malformed("JobMetrics cpu");         \
  }
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_GET_PHASE)
#undef ANTIMR_GET_PHASE
  if (!GetVarint64(&in, &metrics->total_cpu_nanos) ||
      !GetVarint64(&in, &metrics->wall_nanos)) {
    return Malformed("JobMetrics tail");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace antimr
