// The data plane of the distributed shuffle: every worker (and the
// single-process Executor) runs a SegmentServer over its task Env, and
// reduce-side fetchers pull whole stored segments through a ShuffleClient.
// Bytes move as FetchChunk frames, so the frame layer's counters — and the
// FetchedSegment::fetched_bytes each fetch reports — measure the identical
// transport boundary in pipelined and barrier mode, loopback and TCP.
#ifndef ANTIMR_NET_SHUFFLE_SERVICE_H_
#define ANTIMR_NET_SHUFFLE_SERVICE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/env.h"
#include "mr/shuffle.h"
#include "net/transport.h"

namespace antimr {
namespace net {

/// \brief Serves segment files from one Env over a transport.
///
/// One accept thread plus one handler thread per live connection; a
/// connection serves any number of sequential FetchReqs (fetchers pool
/// their conns). Stop() closes everything and joins.
class SegmentServer {
 public:
  /// `transport` and `env` are borrowed and must outlive the server.
  SegmentServer(Transport* transport, Env* env);
  ~SegmentServer();

  SegmentServer(const SegmentServer&) = delete;
  SegmentServer& operator=(const SegmentServer&) = delete;

  /// Listen on `addr` ("" = auto) and start accepting.
  Status Start(const std::string& addr);

  /// The resolved address fetchers dial.
  const std::string& addr() const { return addr_; }

  /// Distributed tracing hook: after each request is served while a trace
  /// is being captured, the handler thread drains its own span buffer and
  /// hands the serialized chunk here (engine::Worker accumulates these for
  /// the coordinator). Called from handler threads — must be thread-safe.
  /// Set before Start.
  void set_trace_sink(std::function<void(std::string&&)> sink) {
    trace_sink_ = std::move(sink);
  }

  void Stop();

 private:
  void AcceptLoop();
  void Serve(Conn* conn);

  Transport* transport_;
  Env* env_;
  std::string addr_;
  std::function<void(std::string&&)> trace_sink_;
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<std::thread> handlers_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

/// \brief Reduce-side fetcher: pulls segments from SegmentServers.
///
/// Keeps a small pool of idle connections per address so a reduce task
/// fetching many segments from one worker pays the dial once. Thread-safe.
class ShuffleClient {
 public:
  /// `network_mb_per_s` simulates shuffle bandwidth: each received chunk
  /// sleeps Bytes/rate, exactly where the pre-transport code throttled its
  /// in-process copies. 0 = unthrottled.
  explicit ShuffleClient(Transport* transport, double network_mb_per_s = 0);
  ~ShuffleClient();

  ShuffleClient(const ShuffleClient&) = delete;
  ShuffleClient& operator=(const ShuffleClient&) = delete;

  /// Fetch segment `file` from the server at `addr` into *out (replacing
  /// its contents). out->fetched_bytes is the segment's stored size — the
  /// payload bytes that crossed the transport. Connection-level failures
  /// and server-reported errors come back as transient IOError so the
  /// retry layer re-fetches (from a re-placed map if the worker is gone).
  Status Fetch(const std::string& addr, const std::string& file,
               FetchedSegment* out);

  double network_mb_per_s() const { return network_mb_per_s_; }

  /// Requester label stamped into FetchReqs ("reduce:<job_id>:<index>") so
  /// remote serve spans attribute their traffic; also enables the
  /// reducer→server flow arrows when a trace is being captured.
  void set_trace_origin(std::string origin) {
    trace_origin_ = std::move(origin);
  }

 private:
  /// One request/response exchange. *server_reported distinguishes an
  /// error the server answered with (surface it) from conn-level trouble
  /// (eligible for the stale-pooled-conn redial).
  Status FetchOnce(Conn* conn, const std::string& file, uint64_t flow_id,
                   FetchedSegment* out, bool* server_reported);

  Transport* transport_;
  const double network_mb_per_s_;
  std::string trace_origin_;
  std::mutex mu_;
  std::map<std::string, std::vector<std::unique_ptr<Conn>>> idle_;
};

}  // namespace net
}  // namespace antimr

#endif  // ANTIMR_NET_SHUFFLE_SERVICE_H_
