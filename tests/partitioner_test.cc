// Skew defenses end to end: partitioner validation (no UB on non-positive
// partition counts), RangePartitioner pivot edge cases, the sampling pass
// (pivots + hot-key detection), hot-key salting round trips, and the
// split1 -> merge fix-up plan whose output must equal the unsplit run as a
// key/value multiset.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "engine/executor.h"
#include "engine/job_plan.h"
#include "engine/skew_runner.h"
#include "mr/api.h"
#include "mr/job_runner.h"
#include "mr/skew.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace {

// --- validation (no UB on bad partition counts) ---------------------------

TEST(PartitionerValidationTest, HashRejectsNonPositivePartitions) {
  HashPartitioner hash;
  const Status st = hash.ValidatePartitions(0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_FALSE(st.IsTransient()) << "bad config must not be retried";
  EXPECT_FALSE(hash.ValidatePartitions(-3).ok());
  EXPECT_TRUE(hash.ValidatePartitions(1).ok());
  // Partition itself clamps instead of dividing by zero.
  EXPECT_EQ(hash.Partition(Slice("k"), 0), 0);
  EXPECT_EQ(hash.Partition(Slice("k"), -5), 0);
}

TEST(PartitionerValidationTest, RangeRejectsMorePivotsThanCuts) {
  const RangePartitioner range({"a", "b", "c"});
  EXPECT_FALSE(range.ValidatePartitions(0).ok());
  // 3 pivots cut the key space into 4 ranges; 3 partitions cannot hold them.
  const Status st = range.ValidatePartitions(3);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(range.ValidatePartitions(4).ok());
  EXPECT_TRUE(range.ValidatePartitions(9).ok());
  EXPECT_EQ(range.Partition(Slice("b"), 0), 0);  // clamped, not UB
}

TEST(PartitionerValidationTest, JobSpecValidateChecksPartitioner) {
  workloads::WordCountConfig config;
  config.num_reduce_tasks = 3;
  JobSpec spec = workloads::MakeWordCountJob(config);
  spec.partitioner = std::make_shared<RangePartitioner>(
      std::vector<std::string>{"a", "b", "c"});  // 3 pivots, 3 reduces
  const Status st = spec.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);

  // The same rejection surfaces at plan-validation time.
  engine::JobPlan plan;
  ASSERT_TRUE(plan.AddInput("in", MakeSplits({{"k", "v"}}, 1)).ok());
  engine::Stage stage;
  stage.name = "wc";
  stage.spec = spec;
  stage.inputs = {"in"};
  stage.output = "out";
  plan.AddStage(std::move(stage));
  EXPECT_FALSE(plan.Validate().ok());
}

// --- range partition boundaries -------------------------------------------

TEST(RangePartitionerTest, PivotBoundaries) {
  const RangePartitioner range({"b", "d"});
  EXPECT_EQ(range.Partition(Slice("a"), 3), 0);
  EXPECT_EQ(range.Partition(Slice("b"), 3), 1);  // keys >= pivot go right
  EXPECT_EQ(range.Partition(Slice("c"), 3), 1);
  EXPECT_EQ(range.Partition(Slice("d"), 3), 2);
  EXPECT_EQ(range.Partition(Slice("zzz"), 3), 2);
  EXPECT_EQ(range.Partition(Slice(""), 3), 0);
}

TEST(RangePartitionerTest, DuplicatePivotsCollapseTheMiddleRange) {
  const RangePartitioner range({"b", "b"});
  EXPECT_EQ(range.Partition(Slice("a"), 3), 0);
  // No key lands strictly between equal pivots: "b" jumps to the last range.
  EXPECT_EQ(range.Partition(Slice("b"), 3), 2);
  EXPECT_EQ(range.Partition(Slice("c"), 3), 2);
}

TEST(RangePartitionerTest, EmptyPivotsFallBackToHash) {
  const RangePartitioner range({});
  for (const char* key : {"alpha", "beta", "", "zeta"}) {
    EXPECT_EQ(range.Partition(Slice(key), 4),
              static_cast<int>(Hash64(Slice(key)) % 4));
  }
}

TEST(RangePartitionerTest, ClampsBeyondLastUsablePartition) {
  // More partitions than ranges is fine (upper ones stay empty); fewer
  // ranges than pivots+1 clamps into the valid range.
  const RangePartitioner range({"m"});
  EXPECT_EQ(range.Partition(Slice("z"), 8), 1);
  const RangePartitioner wide({"c", "f", "t"});
  EXPECT_EQ(wide.Partition(Slice("z"), 2), 1);  // idx 3 clamped to 1
}

// --- key-list codec --------------------------------------------------------

TEST(KeyListCodecTest, RoundTripsBinaryKeys) {
  const std::vector<std::string> keys = {"plain", std::string("nu\0ll", 5),
                                         "", "trailing"};
  std::vector<std::string> decoded;
  ASSERT_TRUE(DecodeKeyList(EncodeKeyList(keys), &decoded).ok());
  EXPECT_EQ(decoded, keys);

  ASSERT_TRUE(DecodeKeyList(EncodeKeyList({}), &decoded).ok());
  EXPECT_TRUE(decoded.empty());

  EXPECT_FALSE(DecodeKeyList("\x07garbage", &decoded).ok());
}

// --- salting ---------------------------------------------------------------

SkewModel HotModel(std::vector<std::string> hot_keys, int fanout) {
  SkewModel model;
  model.hot_keys = std::move(hot_keys);
  std::sort(model.hot_keys.begin(), model.hot_keys.end());
  model.hot_fanout = fanout;
  return model;
}

TEST(SaltTest, SaltAndStripRoundTrip) {
  const SkewModel model = HotModel({"the", "of"}, 4);
  for (uint32_t salt = 0; salt < 4; ++salt) {
    const std::string salted = SaltKey(Slice("the"), salt);
    EXPECT_GT(salted.size(), 3u);
    EXPECT_EQ(StripSalt(model, Slice(salted)).ToString(), "the");
  }
  // Non-hot keys pass through untouched, salted-looking or not.
  EXPECT_EQ(StripSalt(model, Slice("them")).ToString(), "them");
  const std::string fake = SaltKey(Slice("cold"), 1);
  EXPECT_EQ(StripSalt(model, Slice(fake)).ToString(), fake);
  EXPECT_TRUE(IsHotKey(model, Slice("of")));
  EXPECT_FALSE(IsHotKey(model, Slice("off")));
}

TEST(SaltTest, RecordSaltIsDeterministicAndBounded) {
  for (int fanout : {2, 3, 8}) {
    for (const char* value : {"a b c", "x", ""}) {
      const uint32_t salt = RecordSalt(Slice("k"), Slice(value), fanout);
      EXPECT_LT(salt, static_cast<uint32_t>(fanout));
      EXPECT_EQ(salt, RecordSalt(Slice("k"), Slice(value), fanout))
          << "salt must be a pure function of the record (LazySH re-runs it)";
    }
  }
}

// --- the sampling pass -----------------------------------------------------

/// Lines with one superfrequent word ("hot") mixed into a spread of unique
/// words — a Zipf-flavored wordcount input.
std::vector<KV> SkewedLines(int lines, int hot_every) {
  std::vector<KV> records;
  for (int i = 0; i < lines; ++i) {
    std::string line = "w" + std::to_string(i % 97);
    for (int j = 0; j < 3; ++j) {
      line += (i + j) % hot_every == 0 ? " hot"
                                       : " u" + std::to_string(i * 3 + j);
    }
    records.push_back({"", line});
  }
  return records;
}

TEST(SkewModelTest, DetectsHotKeyAndBuildsPivots) {
  workloads::WordCountConfig config;
  config.num_reduce_tasks = 4;
  const JobSpec spec = workloads::MakeWordCountJob(config);
  SkewModel model;
  SkewSampleOptions options;
  ASSERT_TRUE(BuildSkewModel(spec, MakeSplits(SkewedLines(600, 2), 4),
                             options, &model)
                  .ok());
  EXPECT_EQ(model.pivots.size(), 3u);
  EXPECT_TRUE(std::is_sorted(model.pivots.begin(), model.pivots.end()));
  ASSERT_TRUE(model.HasHotKeys());
  EXPECT_NE(std::find(model.hot_keys.begin(), model.hot_keys.end(), "hot"),
            model.hot_keys.end());
  EXPECT_GE(model.hot_fanout, 2);
  EXPECT_EQ(model.salted_pivots.size(), 3u);
}

TEST(SkewModelTest, AllIdenticalKeysStillPartitionInRange) {
  workloads::WordCountConfig config;
  config.num_reduce_tasks = 4;
  const JobSpec spec = workloads::MakeWordCountJob(config);
  std::vector<KV> records(200, KV{"", "same same same"});
  SkewModel model;
  ASSERT_TRUE(BuildSkewModel(spec, MakeSplits(records, 2), SkewSampleOptions(),
                             &model)
                  .ok());
  // Every sampled key equal: all pivots are duplicates of it, and the lone
  // key is superfrequent.
  ASSERT_TRUE(model.HasHotKeys());
  EXPECT_EQ(model.hot_keys, std::vector<std::string>{"same"});
  const RangePartitioner range(model.pivots);
  for (const char* key : {"aaa", "same", "zzz"}) {
    const int p = range.Partition(Slice(key), 4);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(SkewModelTest, EmptySampleFallsBackToHash) {
  workloads::WordCountConfig config;
  config.num_reduce_tasks = 4;
  const JobSpec spec = workloads::MakeWordCountJob(config);
  SkewModel model;
  ASSERT_TRUE(BuildSkewModel(spec, MakeSplits({{"", ""}}, 1),
                             SkewSampleOptions(), &model)
                  .ok());
  EXPECT_TRUE(model.pivots.empty());
  EXPECT_FALSE(model.HasHotKeys());
  const RangePartitioner range(model.pivots);
  EXPECT_EQ(range.Partition(Slice("key"), 4),
            static_cast<int>(Hash64(Slice("key")) % 4));
}

// --- split + merge fix-up --------------------------------------------------

TEST(HotKeySplitTest, Stage1RequiresPartialReducer) {
  workloads::WordCountConfig config;
  JobSpec spec = workloads::MakeWordCountJob(config);
  spec.partial_reducer_factory = nullptr;  // simulate a non-splittable job
  auto model = std::make_shared<SkewModel>(HotModel({"hot"}, 4));
  JobSpec out;
  const Status st = MakeSplitStage1Spec(spec, model, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

std::vector<KV> SortedMultiset(std::vector<KV> kvs) {
  std::sort(kvs.begin(), kvs.end(), [](const KV& a, const KV& b) {
    return a.key != b.key ? a.key < b.key : a.value < b.value;
  });
  return kvs;
}

TEST(HotKeySplitTest, SplitPlanOutputMatchesDirectRun) {
  workloads::WordCountConfig config;
  config.num_reduce_tasks = 4;
  config.with_combiner = false;  // keep the skewed shuffle actually skewed
  const JobSpec spec = workloads::MakeWordCountJob(config);
  const std::vector<KV> input = SkewedLines(900, 2);

  RunOptions run;
  run.collect_output = true;
  JobResult direct;
  ASSERT_TRUE(RunJob(spec, MakeSplits(input, 6), run, &direct).ok());

  for (const bool split : {false, true}) {
    engine::SkewPlanOptions skew;
    skew.hot_key_split = split;
    engine::JobPlan plan;
    std::string output;
    SkewModel model;
    ASSERT_TRUE(engine::MakeSkewPlan(spec, MakeSplits(input, 6), skew, &plan,
                                     &output, &model)
                    .ok());
    ASSERT_TRUE(model.HasHotKeys());
    EXPECT_EQ(plan.stages().size(), split ? 2u : 1u);

    engine::Executor executor;
    engine::PlanResult result;
    const Status st = executor.Run(plan, &result);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(SortedMultiset(result.FlatOutput(output)),
              SortedMultiset(direct.FlatOutput()))
        << (split ? "split+merge" : "range") << " run changed the output";
  }
}

TEST(HotKeySplitTest, SplitSpreadsTheHotKeyAcrossStage1Partitions) {
  workloads::WordCountConfig config;
  config.num_reduce_tasks = 4;
  config.with_combiner = false;
  const JobSpec spec = workloads::MakeWordCountJob(config);
  SkewModel model;
  ASSERT_TRUE(BuildSkewModel(spec, MakeSplits(SkewedLines(600, 2), 4),
                             SkewSampleOptions(), &model)
                  .ok());
  ASSERT_TRUE(model.HasHotKeys());
  const RangePartitioner salted_range(model.salted_pivots);

  // The salted variants of the hot key must not all land in one partition.
  std::map<int, int> partitions;
  for (int salt = 0; salt < model.hot_fanout; ++salt) {
    const std::string salted = SaltKey(Slice("hot"), salt);
    partitions[salted_range.Partition(Slice(salted), 4)]++;
  }
  EXPECT_GT(partitions.size(), 1u)
      << "salting left every hot-key variant in one range";
}

}  // namespace
}  // namespace antimr
