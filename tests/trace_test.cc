#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/stopwatch.h"
#include "obs/trace_merge.h"

namespace antimr {
namespace obs {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// The tracer is a process-wide singleton shared by every test in this
// binary: bracket each test with Stop+Clear so tests stay independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Stop();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Stop();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, MacrosAreNoOpsWithoutASink) {
  ASSERT_FALSE(TraceEnabled());
  const size_t before = Tracer::Global().event_count();
  {
    ANTIMR_TRACE_SPAN("test", "noop");
    ANTIMR_TRACE_SPAN_DYN("test", std::string("never") + "built");
    ANTIMR_TRACE_INSTANT("test", "noop");
    ANTIMR_TRACE_COUNTER("noop", 7);
  }
  EXPECT_EQ(Tracer::Global().event_count(), before);
}

TEST_F(TraceTest, SpansNestAndThreadsGetTheirOwnLanes) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  Tracer::Global().Start();
  {
    ANTIMR_TRACE_SPAN("test", "outer");
    ANTIMR_TRACE_SPAN_DYN("test", std::string("inner"));
  }
  std::thread t([] {
    Tracer::Global().SetCurrentThreadName("trace-test-worker");
    ANTIMR_TRACE_SPAN("test", "worker_span");
  });
  t.join();
  Tracer::Global().Stop();

  const std::string json = Tracer::Global().ToJson();
  // Three spans, each a balanced B/E pair.
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""), 3u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"E\""), 3u);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_span\""), std::string::npos);
  // The worker's lane is labeled through a thread_name metadata event.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"trace-test-worker\""), std::string::npos);
}

TEST_F(TraceTest, InstantCounterAndAsyncEventsCarryTheirFields) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  Tracer::Global().Start();
  ANTIMR_TRACE_INSTANT("test", "spill",
                       TraceArgs().Add("bytes", uint64_t{4096}).Add(
                           "file", std::string("run_0")));
  ANTIMR_TRACE_COUNTER("queue_depth", 11);
  const uint64_t now = NowNanos();
  Tracer::Global().AsyncBegin("stage", "stage:0:count", 42, now - 1000);
  Tracer::Global().AsyncEnd("stage", "stage:0:count", 42, now);
  Tracer::Global().Complete("phase", "sort_ph", now - 500, 250);
  Tracer::Global().Stop();

  const std::string json = Tracer::Global().ToJson();
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"run_0\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 11}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"id\": \"0x2a\""), 2u);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 0.250"), std::string::npos);
}

TEST_F(TraceTest, ExportIsStructurallyValidJson) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  Tracer::Global().Start();
  // A name that needs escaping must not unbalance the document.
  ANTIMR_TRACE_INSTANT("test", std::string("quote\"back\\slash\nnewline"));
  { ANTIMR_TRACE_SPAN("test", "span"); }
  Tracer::Global().Stop();

  const std::string json = Tracer::Global().ToJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  // Braces and brackets balance once escaped quotes are accounted for; no
  // raw control characters survive escaping.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      EXPECT_FALSE(c == '\n' || c == '\t' || c == '\r');
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, StopKeepsEventsUntilClear) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  Tracer::Global().Start();
  ANTIMR_TRACE_INSTANT("test", "kept");
  Tracer::Global().Stop();
  EXPECT_GE(Tracer::Global().event_count(), 1u);
  EXPECT_NE(Tracer::Global().ToJson().find("\"kept\""), std::string::npos);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  EXPECT_EQ(Tracer::Global().ToJson().find("\"kept\""), std::string::npos);
}

TEST_F(TraceTest, FlowArrowsExportWithHexIdsAndBindingPoint) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  Tracer::Global().Start();
  {
    ANTIMR_TRACE_SPAN("test", "dispatch_site");
    Tracer::Global().FlowStart("dispatch", "task_dispatch", 0x2b);
  }
  {
    ANTIMR_TRACE_SPAN("test", "execute_site");
    Tracer::Global().FlowEnd("dispatch", "task_dispatch", 0x2b);
  }
  Tracer::Global().Stop();

  const std::string json = Tracer::Global().ToJson();
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  // Both ends share the id; only the finish carries the binding point.
  EXPECT_EQ(CountOccurrences(json, "\"id\": \"0x2b\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"bp\": \"e\""), 1u);
}

TEST_F(TraceTest, DrainedChunksDecodeAndRemoveEvents) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  Tracer::Global().Start();
  Tracer::Global().SetCurrentThreadName("drain-lane");
  { ANTIMR_TRACE_SPAN("test", "task_one"); }
  ANTIMR_TRACE_INSTANT("test", "mark",
                       TraceArgs().Add("bytes", uint64_t{128}));
  ANTIMR_TRACE_COUNTER("depth", -4);
  Tracer::Global().Stop();

  std::string chunk;
  Tracer::Global().DrainThisThread(&chunk);
  ASSERT_FALSE(chunk.empty());
  // Drained means gone: a second drain ships nothing.
  std::string again;
  Tracer::Global().DrainThisThread(&again);
  EXPECT_TRUE(again.empty());

  std::vector<TraceChunkLane> lanes;
  ASSERT_TRUE(DecodeTraceChunk(chunk, &lanes).ok());
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].name, "drain-lane");
  ASSERT_EQ(lanes[0].events.size(), 4u);  // B, E, i, C
  EXPECT_EQ(lanes[0].events[0].ph, 'B');
  EXPECT_EQ(lanes[0].events[0].name, "task_one");
  EXPECT_EQ(lanes[0].events[1].ph, 'E');
  EXPECT_EQ(lanes[0].events[2].ph, 'i');
  EXPECT_EQ(lanes[0].events[2].args, "\"bytes\": 128");
  EXPECT_EQ(lanes[0].events[3].ph, 'C');
  EXPECT_EQ(lanes[0].events[3].value, -4);

  // Chunks concatenate: two drained blocks decode as two lane blocks.
  Tracer::Global().Start();
  ANTIMR_TRACE_INSTANT("test", "later");
  Tracer::Global().Stop();
  std::string second;
  Tracer::Global().DrainThisThread(&second);
  lanes.clear();
  ASSERT_TRUE(DecodeTraceChunk(chunk + second, &lanes).ok());
  EXPECT_EQ(lanes.size(), 2u);

  EXPECT_FALSE(DecodeTraceChunk(chunk.substr(0, chunk.size() / 2), &lanes)
                   .ok());
}

TEST_F(TraceTest, DrainAllShipsEveryThreadLane) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  Tracer::Global().Start();
  ANTIMR_TRACE_INSTANT("test", "main_lane_event");
  std::thread t([] {
    Tracer::Global().SetCurrentThreadName("drain-all-worker");
    ANTIMR_TRACE_INSTANT("test", "worker_lane_event");
  });
  t.join();
  Tracer::Global().Stop();

  std::string chunk;
  Tracer::Global().DrainAll(&chunk);
  EXPECT_EQ(Tracer::Global().event_count(), 0u);

  std::vector<TraceChunkLane> lanes;
  ASSERT_TRUE(DecodeTraceChunk(chunk, &lanes).ok());
  size_t events = 0;
  bool saw_worker_lane = false;
  for (const TraceChunkLane& lane : lanes) {
    events += lane.events.size();
    saw_worker_lane |= lane.name == "drain-all-worker";
  }
  EXPECT_GE(events, 2u);
  EXPECT_TRUE(saw_worker_lane);
}

TEST_F(TraceTest, ClusterMergerRendersOnePidLanePerProcess) {
  if (!kTraceCompiled) GTEST_SKIP() << "built with ANTIMR_TRACE=OFF";
  // Build two "processes" worth of chunks from the one real tracer.
  Tracer::Global().Start();
  { ANTIMR_TRACE_SPAN("task", "coord_side"); }
  Tracer::Global().Stop();
  std::string coord_chunk;
  Tracer::Global().DrainThisThread(&coord_chunk);

  Tracer::Global().Start();
  Tracer::Global().SetCurrentThreadName("exec-0");
  { ANTIMR_TRACE_SPAN("task", "worker_side"); }
  Tracer::Global().Stop();
  std::string worker_chunk;
  Tracer::Global().DrainThisThread(&worker_chunk);

  ClusterTraceMerger merger;
  merger.SetProcessName(1, "coord");
  merger.SetProcessName(2, "worker:w0");
  ASSERT_TRUE(merger.AddChunk(1, coord_chunk).ok());
  ASSERT_TRUE(merger.AddChunk(2, worker_chunk).ok());
  EXPECT_EQ(merger.event_count(), 4u);  // two balanced B/E pairs

  const std::string json = merger.ToJson();
  EXPECT_EQ(CountOccurrences(json, "\"process_name\""), 2u);
  EXPECT_NE(json.find("\"coord\""), std::string::npos);
  EXPECT_NE(json.find("\"worker:w0\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"coord_side\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_side\""), std::string::npos);
  // The worker lane keeps its thread label under its own pid.
  EXPECT_NE(json.find("\"exec-0\""), std::string::npos);

  // A chunk for a pid nobody labeled still renders, with a synthetic name.
  ClusterTraceMerger unlabeled;
  ASSERT_TRUE(unlabeled.AddChunk(7, coord_chunk).ok());
  EXPECT_NE(unlabeled.ToJson().find("\"pid7\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace antimr
