// Unit tests of the syntactic transformation itself: what EnableAntiCombining
// rewrites, what it preserves, and how the C flag wires the Combiner.
#include "anticombine/transform.h"

#include <gtest/gtest.h>

#include "anticombine/anti_mapper.h"
#include "anticombine/anti_reducer.h"

namespace antimr {
namespace anticombine {
namespace {

class NopMapper : public Mapper {
 public:
  void Map(const Slice&, const Slice&, MapContext*) override {}
};
class NopReducer : public Reducer {
 public:
  void Reduce(const Slice&, ValueIterator*, ReduceContext*) override {}
};

JobSpec BaseSpec(bool with_combiner) {
  JobSpec spec;
  spec.name = "base";
  spec.mapper_factory = []() { return std::make_unique<NopMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<NopReducer>(); };
  if (with_combiner) {
    spec.combiner_factory = []() { return std::make_unique<NopReducer>(); };
  }
  spec.num_reduce_tasks = 7;
  spec.map_output_codec = CodecType::kGzip;
  spec.map_buffer_bytes = 12345;
  return spec;
}

TEST(Transform, WrapsMapperAndReducer) {
  const JobSpec t = EnableAntiCombining(BaseSpec(false),
                                        AntiCombineOptions());
  auto mapper = t.mapper_factory();
  auto reducer = t.reducer_factory();
  EXPECT_NE(dynamic_cast<AntiMapper*>(mapper.get()), nullptr);
  EXPECT_NE(dynamic_cast<AntiReducer*>(reducer.get()), nullptr);
}

TEST(Transform, PreservesJobKnobs) {
  const JobSpec original = BaseSpec(false);
  const JobSpec t = EnableAntiCombining(original, AntiCombineOptions());
  EXPECT_EQ(t.num_reduce_tasks, original.num_reduce_tasks);
  EXPECT_EQ(t.map_output_codec, original.map_output_codec);
  EXPECT_EQ(t.map_buffer_bytes, original.map_buffer_bytes);
  EXPECT_EQ(t.partitioner, original.partitioner);
  EXPECT_NE(t.name, original.name) << "transformed jobs are distinguishable";
  EXPECT_TRUE(t.mapper_reports_logical_output);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(Transform, NoCombinerStaysNoCombiner) {
  const JobSpec t = EnableAntiCombining(BaseSpec(false),
                                        AntiCombineOptions());
  EXPECT_EQ(t.combiner_factory, nullptr);
}

TEST(Transform, FlagC1WrapsCombiner) {
  AntiCombineOptions options;
  options.map_phase_combiner = true;
  const JobSpec t = EnableAntiCombining(BaseSpec(true), options);
  ASSERT_NE(t.combiner_factory, nullptr);
  auto combiner = t.combiner_factory();
  EXPECT_NE(dynamic_cast<AntiCombiner*>(combiner.get()), nullptr)
      << "the Combiner gets the same syntactic treatment (Section 6.1)";
}

TEST(Transform, FlagC0RemovesMapPhaseCombiner) {
  AntiCombineOptions options;
  options.map_phase_combiner = false;
  const JobSpec t = EnableAntiCombining(BaseSpec(true), options);
  EXPECT_EQ(t.combiner_factory, nullptr)
      << "C = 0 drops the Combiner from the map phase only";
}

TEST(Transform, OriginalSpecIsUntouched) {
  JobSpec original = BaseSpec(true);
  (void)EnableAntiCombining(original, AntiCombineOptions());
  EXPECT_EQ(original.name, "base");
  auto mapper = original.mapper_factory();
  EXPECT_EQ(dynamic_cast<AntiMapper*>(mapper.get()), nullptr);
  EXPECT_NE(original.combiner_factory, nullptr);
}

TEST(Transform, TransformIsRepeatable) {
  // Each transformed factory builds independent instances.
  const JobSpec t = EnableAntiCombining(BaseSpec(false),
                                        AntiCombineOptions());
  auto a = t.mapper_factory();
  auto b = t.mapper_factory();
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace anticombine
}  // namespace antimr
