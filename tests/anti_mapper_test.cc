// Unit-level tests of AntiMapper's encoding decisions, driving it directly
// with scripted mappers and inspecting the emitted wire records.
#include "anticombine/anti_mapper.h"

#include <map>

#include <gtest/gtest.h>

#include "anticombine/encoding.h"
#include "mr/metrics.h"

namespace antimr {
namespace anticombine {
namespace {

// Collects the AntiMapper's emissions for inspection.
class EmitCollector : public MapContext {
 public:
  void Emit(const Slice& key, const Slice& value) override {
    emitted.push_back({key.ToString(), value.ToString()});
  }
  std::vector<KV> emitted;
};

// Emits a fixed script of records for every input.
class ScriptedMapper : public Mapper {
 public:
  explicit ScriptedMapper(std::vector<KV> script)
      : script_(std::move(script)) {}

  void Map(const Slice&, const Slice&, MapContext* ctx) override {
    for (const KV& kv : script_) ctx->Emit(kv.key, kv.value);
  }

 private:
  std::vector<KV> script_;
};

// Partition = first key character digit, mod partitions.
class DigitPartitioner : public Partitioner {
 public:
  int Partition(const Slice& key, int num_partitions) const override {
    return (key.empty() ? 0 : key[0] - '0') % num_partitions;
  }
};

struct Decoded {
  Encoding encoding;
  std::vector<std::string> other_keys;
  std::string value;        // eager
  std::string input_key;    // lazy
  std::string input_value;  // lazy
};

Decoded Decode(const KV& record) {
  Decoded d;
  Slice rest;
  EXPECT_TRUE(GetEncoding(record.value, &d.encoding, &rest).ok());
  if (d.encoding == Encoding::kEager) {
    std::vector<Slice> keys;
    Slice value;
    EXPECT_TRUE(DecodeEagerPayload(rest, &keys, &value).ok());
    for (const Slice& k : keys) d.other_keys.push_back(k.ToString());
    d.value = value.ToString();
  } else {
    Slice ik, iv;
    EXPECT_TRUE(DecodeLazyPayload(rest, &ik, &iv).ok());
    d.input_key = ik.ToString();
    d.input_value = iv.ToString();
  }
  return d;
}

class AntiMapperTest : public ::testing::Test {
 protected:
  // Run one Map call through an AntiMapper and return the emissions.
  std::vector<KV> RunOne(std::vector<KV> script,
                         const AntiCombineOptions& options,
                         const Slice& input_key, const Slice& input_value,
                         bool allow_lazy = true, int partitions = 4) {
    AntiMapper anti(
        [script]() { return std::make_unique<ScriptedMapper>(script); },
        options, allow_lazy);
    TaskInfo info;
    info.task_id = 0;
    info.num_reduce_tasks = partitions;
    info.partitioner = &partitioner_;
    info.key_cmp = BytewiseCompare;
    info.grouping_cmp = BytewiseCompare;
    info.metrics = &metrics_;
    EmitCollector collector;
    anti.Setup(info, &collector);
    anti.Map(input_key, input_value, &collector);
    anti.Cleanup(&collector);
    return collector.emitted;
  }

  DigitPartitioner partitioner_;
  JobMetrics metrics_;
};

TEST_F(AntiMapperTest, SharedValueSamePartitionBecomesOneEagerRecord) {
  // Keys 1a,1b,1c -> partition 1; same value.
  auto out = RunOne({{"1b", "v"}, {"1c", "v"}, {"1a", "v"}},
                    AntiCombineOptions::EagerOnly(), "in", "input");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "1a") << "minimal key is the representative";
  Decoded d = Decode(out[0]);
  EXPECT_EQ(d.encoding, Encoding::kEager);
  EXPECT_EQ(d.other_keys, (std::vector<std::string>{"1b", "1c"}));
  EXPECT_EQ(d.value, "v");
}

TEST_F(AntiMapperTest, DifferentPartitionsDoNotShare) {
  // Same value but keys on different partitions: no sharing possible
  // (the paper's (k1,v1)/(k2,v1) example in Section 3).
  auto out = RunOne({{"1a", "v"}, {"2a", "v"}},
                    AntiCombineOptions::EagerOnly(), "in", "input");
  ASSERT_EQ(out.size(), 2u);
  for (const KV& kv : out) {
    Decoded d = Decode(kv);
    EXPECT_TRUE(d.other_keys.empty());
  }
}

TEST_F(AntiMapperTest, DistinctValuesWithinPartitionMakeSeparateGroups) {
  auto out = RunOne({{"1a", "x"}, {"1b", "y"}, {"1c", "x"}},
                    AntiCombineOptions::EagerOnly(), "in", "input");
  ASSERT_EQ(out.size(), 2u);
  std::map<std::string, Decoded> by_key;
  for (const KV& kv : out) by_key[kv.key] = Decode(kv);
  EXPECT_EQ(by_key["1a"].other_keys, std::vector<std::string>{"1c"});
  EXPECT_EQ(by_key["1a"].value, "x");
  EXPECT_TRUE(by_key["1b"].other_keys.empty());
}

TEST_F(AntiMapperTest, LazyChosenWhenSmallerThanEager) {
  // Large distinct values, tiny input record: Lazy wins the size test.
  std::vector<KV> script;
  for (int i = 0; i < 6; ++i) {
    script.push_back({"1k" + std::to_string(i),
                      "distinct-value-" + std::to_string(i) +
                          std::string(50, 'x')});
  }
  auto out = RunOne(script, AntiCombineOptions::Unrestricted(), "ik", "iv");
  ASSERT_EQ(out.size(), 1u);
  Decoded d = Decode(out[0]);
  EXPECT_EQ(d.encoding, Encoding::kLazy);
  EXPECT_EQ(d.input_key, "ik");
  EXPECT_EQ(d.input_value, "iv");
  EXPECT_EQ(out[0].key, "1k0") << "lazy record keyed by partition-min key";
}

TEST_F(AntiMapperTest, EagerChosenWhenInputIsLarge) {
  // Tiny outputs, huge input record: resending the input would be absurd.
  const std::string huge_input(1000, 'z');
  auto out = RunOne({{"1a", "x"}, {"1b", "y"}},
                    AntiCombineOptions::Unrestricted(), "ik", huge_input);
  for (const KV& kv : out) {
    EXPECT_EQ(Decode(kv).encoding, Encoding::kEager);
  }
}

TEST_F(AntiMapperTest, ThresholdZeroForbidsLazy) {
  std::vector<KV> script;
  for (int i = 0; i < 6; ++i) {
    script.push_back({"1k" + std::to_string(i),
                      "distinct" + std::to_string(i) + std::string(50, 'x')});
  }
  auto out = RunOne(script, AntiCombineOptions::EagerOnly(), "ik", "iv");
  for (const KV& kv : out) {
    EXPECT_EQ(Decode(kv).encoding, Encoding::kEager);
  }
  EXPECT_EQ(metrics_.lazy_records, 0u);
}

TEST_F(AntiMapperTest, NonDeterministicMapperForbidsLazy) {
  std::vector<KV> script;
  for (int i = 0; i < 6; ++i) {
    script.push_back({"1k" + std::to_string(i),
                      "distinct" + std::to_string(i) + std::string(50, 'x')});
  }
  auto out = RunOne(script, AntiCombineOptions::Unrestricted(), "ik", "iv",
                    /*allow_lazy=*/false);
  for (const KV& kv : out) {
    EXPECT_EQ(Decode(kv).encoding, Encoding::kEager);
  }
}

TEST_F(AntiMapperTest, ForceLazyOverridesSizeTest) {
  const std::string huge_input(1000, 'z');
  auto out = RunOne({{"1a", "x"}}, AntiCombineOptions::LazyOnly(), "ik",
                    huge_input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Decode(out[0]).encoding, Encoding::kLazy);
}

TEST_F(AntiMapperTest, PerPartitionChoiceIsIndependent) {
  // Partition 1: shared value (eager clearly smaller). Partition 2: large
  // distinct values (lazy clearly smaller).
  std::vector<KV> script = {{"1a", "s"}, {"1b", "s"}, {"1c", "s"}};
  for (int i = 0; i < 6; ++i) {
    script.push_back({"2k" + std::to_string(i),
                      "distinct" + std::to_string(i) + std::string(60, 'q')});
  }
  // Input sized so Lazy loses partition 1's size test but wins partition 2's.
  auto out = RunOne(script, AntiCombineOptions::Unrestricted(), "ik",
                    std::string(30, 'i'));
  int eager = 0, lazy = 0;
  for (const KV& kv : out) {
    Decoded d = Decode(kv);
    if (d.encoding == Encoding::kEager) {
      ++eager;
      EXPECT_EQ(kv.key[0], '1');
    } else {
      ++lazy;
      EXPECT_EQ(kv.key[0], '2');
    }
  }
  EXPECT_EQ(eager, 1);
  EXPECT_EQ(lazy, 1);
}

TEST_F(AntiMapperTest, SetupEmissionsAreEagerOnly) {
  // A mapper that emits during Setup has no input record to resend; even
  // with force_lazy the batch must be Eager-encoded.
  class SetupEmitter : public Mapper {
   public:
    void Setup(const TaskInfo&, MapContext* ctx) override {
      ctx->Emit("1a", std::string(200, 'v'));
      ctx->Emit("1b", std::string(200, 'v'));
    }
    void Map(const Slice&, const Slice&, MapContext*) override {}
  };
  AntiMapper anti([]() { return std::make_unique<SetupEmitter>(); },
                  AntiCombineOptions::LazyOnly(), /*allow_lazy=*/true);
  TaskInfo info;
  info.num_reduce_tasks = 4;
  info.partitioner = &partitioner_;
  info.key_cmp = BytewiseCompare;
  info.grouping_cmp = BytewiseCompare;
  info.metrics = &metrics_;
  EmitCollector collector;
  anti.Setup(info, &collector);
  anti.Cleanup(&collector);
  ASSERT_EQ(collector.emitted.size(), 1u);
  EXPECT_EQ(Decode(collector.emitted[0]).encoding, Encoding::kEager);
}

TEST_F(AntiMapperTest, MetricsCountLogicalOutput) {
  RunOne({{"1a", "v"}, {"1b", "v"}, {"2c", "w"}},
         AntiCombineOptions::EagerOnly(), "in", "input");
  EXPECT_EQ(metrics_.map_output_records, 3u);
  EXPECT_EQ(metrics_.eager_records, 1u);  // {1a,1b} collapse
  EXPECT_EQ(metrics_.plain_records, 1u);  // 2c stands alone
  EXPECT_EQ(metrics_.lazy_records, 0u);
}

}  // namespace
}  // namespace anticombine
}  // namespace antimr
