#include "common/stopwatch.h"

#include <thread>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Stopwatch, NowNanosIsMonotonic) {
  uint64_t last = NowNanos();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = NowNanos();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  sw.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const uint64_t elapsed = sw.Stop();
  EXPECT_GE(elapsed, 15'000'000u);   // >= 15ms
  EXPECT_LT(elapsed, 500'000'000u);  // < 500ms (generous for CI noise)
  EXPECT_EQ(sw.total_nanos(), elapsed);
}

TEST(Stopwatch, AccumulatesAcrossCycles) {
  Stopwatch sw;
  for (int i = 0; i < 3; ++i) {
    sw.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sw.Stop();
  }
  EXPECT_GE(sw.total_nanos(), 10'000'000u);
  sw.Reset();
  EXPECT_EQ(sw.total_nanos(), 0u);
}

TEST(Stopwatch, ScopedTimerAddsToSink) {
  uint64_t sink = 0;
  {
    ScopedTimer t(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink, 5'000'000u);
  const uint64_t after_first = sink;
  {
    ScopedTimer t(&sink);
  }
  EXPECT_GE(sink, after_first);
}

TEST(Stopwatch, ThreadCpuExcludesSleep) {
  const uint64_t cpu_start = ThreadCpuNanos();
  const uint64_t wall_start = NowNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const uint64_t cpu = ThreadCpuNanos() - cpu_start;
  const uint64_t wall = NowNanos() - wall_start;
  EXPECT_GE(wall, 40'000'000u);
  // Sleeping burns (almost) no CPU.
  EXPECT_LT(cpu, wall / 2);
}

}  // namespace
}  // namespace antimr
