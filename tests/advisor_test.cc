#include "anticombine/advisor.h"

#include <gtest/gtest.h>

#include "datagen/qlog.h"
#include "datagen/random_text.h"
#include "test_util.h"
#include "workloads/query_suggestion.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace anticombine {
namespace {

TEST(Advisor, RequiresACombiner) {
  workloads::WordCountConfig cfg;
  cfg.with_combiner = false;
  CombinerAdvice advice;
  EXPECT_TRUE(AdviseCombinerFlag(workloads::MakeWordCountJob(cfg), {},
                                 &advice)
                  .IsInvalidArgument());
}

TEST(Advisor, RecommendsKeepingAnEffectiveCombiner) {
  // WordCount over a tiny vocabulary: the Combiner is devastatingly
  // effective, so C = 1.
  RandomTextConfig rc;
  rc.num_lines = 1000;
  rc.vocabulary_words = 50;
  workloads::WordCountConfig cfg;
  cfg.with_combiner = true;
  CombinerAdvice advice;
  ASSERT_TRUE(AdviseCombinerFlag(workloads::MakeWordCountJob(cfg),
                                 RandomTextGenerator(rc).MakeSplits(2),
                                 &advice)
                  .ok());
  EXPECT_TRUE(advice.map_phase_combiner);
  EXPECT_LT(advice.combiner_reduction, 0.2);
  EXPECT_LT(advice.sample_bytes_with, advice.sample_bytes_without);
}

TEST(Advisor, RecommendsDroppingAnIneffectiveCombiner) {
  // Query-Suggestion over mostly-distinct queries: the paper's ~12% case.
  QLogConfig qc;
  qc.num_records = 3000;
  qc.num_distinct = 2800;
  qc.popularity_skew = 0.3;
  workloads::QuerySuggestionConfig cfg;
  cfg.with_combiner = true;
  CombinerAdvice advice;
  ASSERT_TRUE(AdviseCombinerFlag(workloads::MakeQuerySuggestionJob(cfg),
                                 QLogGenerator(qc).MakeSplits(4), &advice)
                  .ok());
  EXPECT_FALSE(advice.map_phase_combiner);
  EXPECT_GT(advice.combiner_reduction, 0.8);
}

TEST(Advisor, ThresholdIsConfigurable) {
  RandomTextConfig rc;
  rc.num_lines = 500;
  rc.vocabulary_words = 50;
  workloads::WordCountConfig cfg;
  cfg.with_combiner = true;
  CombinerAdvice advice;
  // With an impossible threshold even a great combiner is "not worth it".
  ASSERT_TRUE(AdviseCombinerFlag(workloads::MakeWordCountJob(cfg),
                                 RandomTextGenerator(rc).MakeSplits(2),
                                 &advice, /*min_reduction=*/0.0)
                  .ok());
  EXPECT_FALSE(advice.map_phase_combiner);
}

}  // namespace
}  // namespace anticombine
}  // namespace antimr
