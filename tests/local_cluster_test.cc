#include "mr/local_cluster.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> ran(100);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&ran, i]() {
      ran[i].fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunWave(tasks).ok());
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(TaskPool, EmptyWave) {
  TaskPool pool(4);
  EXPECT_TRUE(pool.RunWave({}).ok());
}

TEST(TaskPool, SingleWorker) {
  TaskPool pool(1);
  int counter = 0;
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&counter]() {
      ++counter;  // single worker: no synchronization needed
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunWave(tasks).ok());
  EXPECT_EQ(counter, 10);
}

TEST(TaskPool, ReportsFirstFailureByIndex) {
  TaskPool pool(8);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([i]() {
      if (i == 7) return Status::IOError("failure-7");
      if (i == 30) return Status::Internal("failure-30");
      return Status::OK();
    });
  }
  Status st = pool.RunWave(tasks);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "failure-7");
}

TEST(TaskPool, FailureDoesNotPreventOtherTasks) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&ran, i]() {
      ran.fetch_add(1);
      return i == 0 ? Status::Internal("boom") : Status::OK();
    });
  }
  EXPECT_FALSE(pool.RunWave(tasks).ok());
  EXPECT_EQ(ran.load(), 20);
}

TEST(TaskPool, ParallelismActuallyHappens) {
  TaskPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&]() {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunWave(tasks).ok());
  EXPECT_GT(peak.load(), 1);
  EXPECT_LE(peak.load(), 4);
}

TEST(TaskPool, DefaultsToHardwareConcurrency) {
  TaskPool pool(0);
  EXPECT_GT(pool.num_workers(), 0);
}

TEST(TaskPool, ReusesWorkerThreadsAcrossWaves) {
  TaskPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  auto record = [&]() {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
    return Status::OK();
  };
  for (int wave = 0; wave < 3; ++wave) {
    std::vector<std::function<Status()>> tasks(16, record);
    ASSERT_TRUE(pool.RunWave(tasks).ok());
  }
  // A persistent pool never runs work on more threads than it owns, no
  // matter how many waves pass through it.
  EXPECT_LE(seen.size(), 4u);
  EXPECT_GE(seen.size(), 1u);
}

TEST(TaskPool, SubmitRunsDetachedWork) {
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  {
    TaskPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&]() {
        std::lock_guard<std::mutex> lock(mu);
        if (++done == 10) cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return done == 10; });
  }
  EXPECT_EQ(done, 10);
}

TEST(TaskPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    TaskPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&ran]() { ran.fetch_add(1); });
    }
  }  // destructor must run everything already submitted
  EXPECT_EQ(ran.load(), 20);
}

TEST(TaskGraph, RunsDependenciesBeforeDependents) {
  TaskPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<bool> a_done{false};
  std::atomic<bool> b_saw_a{false};
  const int a = graph.AddTask([&]() {
    a_done.store(true);
    return Status::OK();
  });
  graph.AddTask([&]() {
    b_saw_a.store(a_done.load());
    return Status::OK();
  },
                {a});
  ASSERT_TRUE(graph.Wait().ok());
  EXPECT_TRUE(b_saw_a.load());
}

TEST(TaskGraph, DependentsRunWithoutAWaveBarrier) {
  // `slow` (no deps) blocks until `fetch` — which depends on `map` — has
  // run. A barrier scheduler would deadlock here: fetch would wait for the
  // whole first wave (including slow) to finish.
  TaskPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<bool> fetch_ran{false};
  graph.AddTask([&]() {
    while (!fetch_ran.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });
  const int map_task = graph.AddTask([]() { return Status::OK(); });
  graph.AddTask([&]() {
    fetch_ran.store(true);
    return Status::OK();
  },
                {map_task});
  ASSERT_TRUE(graph.Wait().ok());
  EXPECT_TRUE(fetch_ran.load());
}

TEST(TaskGraph, SkipsTransitiveDependentsOfFailure) {
  TaskPool pool(4);
  TaskGraph graph(&pool);
  std::atomic<int> ran{0};
  const int bad = graph.AddTask([]() { return Status::IOError("map died"); });
  const int skipped = graph.AddTask([&]() {
    ran.fetch_add(1);
    return Status::OK();
  },
                                    {bad});
  graph.AddTask([&]() {
    ran.fetch_add(1);
    return Status::OK();
  },
                {skipped});
  std::atomic<bool> independent{false};
  graph.AddTask([&]() {
    independent.store(true);
    return Status::OK();
  });
  Status st = graph.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "map died");
  EXPECT_EQ(ran.load(), 0) << "dependents of a failed task must not run";
  EXPECT_TRUE(independent.load()) << "unrelated tasks still run";
}

TEST(TaskGraph, ReportsFirstFailureById) {
  TaskPool pool(4);
  TaskGraph graph(&pool);
  graph.AddTask([]() { return Status::IOError("first"); });
  for (int i = 0; i < 10; ++i) {
    graph.AddTask([]() { return Status::OK(); });
  }
  graph.AddTask([]() { return Status::Internal("later"); });
  Status st = graph.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "first");
}

TEST(TaskGraph, RoutesTasksToOverridePool) {
  TaskPool pool(1);
  TaskPool fetch_pool(2);
  TaskGraph graph(&pool);
  std::mutex mu;
  std::set<std::thread::id> default_threads;
  std::set<std::thread::id> fetch_threads;
  for (int i = 0; i < 4; ++i) {
    graph.AddTask([&]() {
      std::lock_guard<std::mutex> lock(mu);
      default_threads.insert(std::this_thread::get_id());
      return Status::OK();
    });
    graph.AddTask(
        [&]() {
          std::lock_guard<std::mutex> lock(mu);
          fetch_threads.insert(std::this_thread::get_id());
          return Status::OK();
        },
        {}, &fetch_pool);
  }
  ASSERT_TRUE(graph.Wait().ok());
  EXPECT_EQ(default_threads.size(), 1u);
  EXPECT_LE(fetch_threads.size(), 2u);
  for (const auto& id : fetch_threads) {
    EXPECT_EQ(default_threads.count(id), 0u)
        << "override-pool tasks must not run on the default pool";
  }
}

TEST(TaskGraph, DependencyOnAlreadyFinishedTask) {
  TaskPool pool(2);
  TaskGraph graph(&pool);
  const int a = graph.AddTask([]() { return Status::OK(); });
  ASSERT_TRUE(graph.Wait().ok());
  // Growing the graph after Wait: the dependency is already satisfied.
  std::atomic<bool> ran{false};
  graph.AddTask([&]() {
    ran.store(true);
    return Status::OK();
  },
                {a});
  ASSERT_TRUE(graph.Wait().ok());
  EXPECT_TRUE(ran.load());
}

// ---- Retry policy ----------------------------------------------------------

TEST(TaskGraph, RetriesTransientFailureUntilSuccess) {
  TaskPool pool(2);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_nanos = 1000;  // keep the test fast
  TaskGraph graph(&pool, retry);
  std::atomic<int> calls{0};
  std::atomic<int> dependent_ran{0};
  const int flaky = graph.AddTask(
      [&](int attempt) {
        EXPECT_EQ(attempt, calls.load()) << "attempt number out of step";
        if (calls.fetch_add(1) < 2) return Status::IOError("flake");
        return Status::OK();
      },
      {}, TaskGraph::TaskOptions{});
  graph.AddTask([&]() {
    dependent_ran.fetch_add(1);
    return Status::OK();
  },
                {flaky});
  ASSERT_TRUE(graph.Wait().ok());
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(dependent_ran.load(), 1)
      << "dependent must run exactly once, after the successful attempt";
}

TEST(TaskGraph, DoesNotRetryPermanentFailures) {
  TaskPool pool(2);
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.backoff_nanos = 1000;
  TaskGraph graph(&pool, retry);
  std::atomic<int> calls{0};
  graph.AddTask(
      [&](int) {
        calls.fetch_add(1);
        return Status::Corruption("bad block");
      },
      {}, TaskGraph::TaskOptions{});
  Status st = graph.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(calls.load(), 1) << "permanent failures must not be retried";
}

TEST(TaskGraph, ExhaustedRetryBudgetSurfacesLastError) {
  TaskPool pool(2);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_nanos = 1000;
  TaskGraph graph(&pool, retry);
  std::atomic<int> calls{0};
  std::atomic<int> dependent_ran{0};
  const int doomed = graph.AddTask(
      [&](int) {
        calls.fetch_add(1);
        return Status::IOError("still down");
      },
      {}, TaskGraph::TaskOptions{});
  graph.AddTask([&]() {
    dependent_ran.fetch_add(1);
    return Status::OK();
  },
                {doomed});
  Status st = graph.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(calls.load(), 3) << "budget is total attempts, not retries";
  EXPECT_EQ(dependent_ran.load(), 0);
}

TEST(TaskGraph, PerTaskPolicyOverridesGraphDefault) {
  TaskPool pool(2);
  TaskGraph graph(&pool);  // graph default: no retries
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.backoff_nanos = 1000;
  std::atomic<int> calls{0};
  TaskGraph::TaskOptions options;
  options.retry = &retry;
  graph.AddTask(
      [&](int) {
        if (calls.fetch_add(1) == 0) return Status::IOError("flake");
        return Status::OK();
      },
      {}, options);
  ASSERT_TRUE(graph.Wait().ok());
  EXPECT_EQ(calls.load(), 2);
}

TEST(TaskGraph, AlwaysRunTaskExecutesAfterDependencyFailure) {
  TaskPool pool(2);
  TaskGraph graph(&pool);
  std::atomic<bool> cleanup_ran{false};
  const int bad = graph.AddTask([]() { return Status::IOError("map died"); });
  TaskGraph::TaskOptions cleanup_options;
  cleanup_options.always_run = true;
  graph.AddTask(
      [&](int) {
        cleanup_ran.store(true);
        return Status::OK();
      },
      {bad}, cleanup_options);
  Status st = graph.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(cleanup_ran.load())
      << "always_run tasks must survive the skip cascade";
}

TEST(TaskGraph, AlwaysRunTaskOnAlreadyFailedDependency) {
  TaskPool pool(2);
  TaskGraph graph(&pool);
  const int bad = graph.AddTask([]() { return Status::IOError("dead"); });
  EXPECT_FALSE(graph.Wait().ok());
  // The dependency is already terminal-failed when the task is added.
  std::atomic<bool> cleanup_ran{false};
  TaskGraph::TaskOptions cleanup_options;
  cleanup_options.always_run = true;
  graph.AddTask(
      [&](int) {
        cleanup_ran.store(true);
        return Status::OK();
      },
      {bad}, cleanup_options);
  EXPECT_FALSE(graph.Wait().ok()) << "first failure is still reported";
  EXPECT_TRUE(cleanup_ran.load());
}

TEST(TaskGraph, DeterministicBackoffScheduleIsReproducible) {
  // Two graphs with the same policy retry the same task id on the same
  // schedule: assert indirectly by timing nothing — just that both runs
  // take the same number of attempts and succeed. (The jitter itself is a
  // pure function of {seed, id, attempt}; see RetryBackoffNanos.)
  for (int round = 0; round < 2; ++round) {
    TaskPool pool(2);
    RetryPolicy retry;
    retry.max_attempts = 4;
    retry.backoff_nanos = 1000;
    retry.seed = 42;
    TaskGraph graph(&pool, retry);
    std::atomic<int> calls{0};
    graph.AddTask(
        [&](int) {
          if (calls.fetch_add(1) < 3) return Status::IOError("flake");
          return Status::OK();
        },
        {}, TaskGraph::TaskOptions{});
    ASSERT_TRUE(graph.Wait().ok());
    EXPECT_EQ(calls.load(), 4);
  }
}

TEST(LocalCluster, ProvidesEnvAndPool) {
  LocalCluster::Options options;
  options.num_workers = 2;
  LocalCluster cluster(options);
  EXPECT_EQ(cluster.pool()->num_workers(), 2);
  ASSERT_NE(cluster.env(), nullptr);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(cluster.env()->NewWritableFile("x", &f).ok());
}

}  // namespace
}  // namespace antimr
