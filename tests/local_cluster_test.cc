#include "mr/local_cluster.h"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> ran(100);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&ran, i]() {
      ran[i].fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunWave(tasks).ok());
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(TaskPool, EmptyWave) {
  TaskPool pool(4);
  EXPECT_TRUE(pool.RunWave({}).ok());
}

TEST(TaskPool, SingleWorker) {
  TaskPool pool(1);
  int counter = 0;
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&counter]() {
      ++counter;  // single worker: no synchronization needed
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunWave(tasks).ok());
  EXPECT_EQ(counter, 10);
}

TEST(TaskPool, ReportsFirstFailureByIndex) {
  TaskPool pool(8);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([i]() {
      if (i == 7) return Status::IOError("failure-7");
      if (i == 30) return Status::Internal("failure-30");
      return Status::OK();
    });
  }
  Status st = pool.RunWave(tasks);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "failure-7");
}

TEST(TaskPool, FailureDoesNotPreventOtherTasks) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&ran, i]() {
      ran.fetch_add(1);
      return i == 0 ? Status::Internal("boom") : Status::OK();
    });
  }
  EXPECT_FALSE(pool.RunWave(tasks).ok());
  EXPECT_EQ(ran.load(), 20);
}

TEST(TaskPool, ParallelismActuallyHappens) {
  TaskPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&]() {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunWave(tasks).ok());
  EXPECT_GT(peak.load(), 1);
  EXPECT_LE(peak.load(), 4);
}

TEST(TaskPool, DefaultsToHardwareConcurrency) {
  TaskPool pool(0);
  EXPECT_GT(pool.num_workers(), 0);
}

TEST(LocalCluster, ProvidesEnvAndPool) {
  LocalCluster::Options options;
  options.num_workers = 2;
  LocalCluster cluster(options);
  EXPECT_EQ(cluster.pool()->num_workers(), 2);
  ASSERT_NE(cluster.env(), nullptr);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(cluster.env()->NewWritableFile("x", &f).ok());
}

}  // namespace
}  // namespace antimr
