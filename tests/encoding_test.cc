#include "anticombine/encoding.h"

#include <gtest/gtest.h>

namespace antimr {
namespace anticombine {
namespace {

TEST(Encoding, EagerRoundTrip) {
  std::vector<Slice> other_keys = {Slice("man"), Slice("mango")};
  std::string payload;
  EncodeEagerPayload(other_keys, Slice("mango"), &payload);

  Encoding encoding;
  Slice rest;
  ASSERT_TRUE(GetEncoding(payload, &encoding, &rest).ok());
  EXPECT_EQ(encoding, Encoding::kEager);
  std::vector<Slice> decoded_keys;
  Slice value;
  ASSERT_TRUE(DecodeEagerPayload(rest, &decoded_keys, &value).ok());
  ASSERT_EQ(decoded_keys.size(), 2u);
  EXPECT_EQ(decoded_keys[0].ToString(), "man");
  EXPECT_EQ(decoded_keys[1].ToString(), "mango");
  EXPECT_EQ(value.ToString(), "mango");
}

TEST(Encoding, EagerEmptyKeySetIsPlain) {
  std::string payload;
  EncodeEagerPayload({}, Slice("value"), &payload);
  // flag + varint(0) + value: exactly 2 bytes of overhead (Section 7.1).
  EXPECT_EQ(payload.size(), 2u + 5u);

  Encoding encoding;
  Slice rest;
  ASSERT_TRUE(GetEncoding(payload, &encoding, &rest).ok());
  std::vector<Slice> keys;
  Slice value;
  ASSERT_TRUE(DecodeEagerPayload(rest, &keys, &value).ok());
  EXPECT_TRUE(keys.empty());
  EXPECT_EQ(value.ToString(), "value");
}

TEST(Encoding, EagerEmptyValue) {
  std::string payload;
  EncodeEagerPayload({Slice("k2")}, Slice(""), &payload);
  Encoding encoding;
  Slice rest;
  ASSERT_TRUE(GetEncoding(payload, &encoding, &rest).ok());
  std::vector<Slice> keys;
  Slice value;
  ASSERT_TRUE(DecodeEagerPayload(rest, &keys, &value).ok());
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_TRUE(value.empty());
}

TEST(Encoding, EagerSizePredictionExact) {
  for (const auto& value : {std::string(""), std::string("v"),
                            std::string(300, 'x')}) {
    std::vector<Slice> keys = {Slice("alpha"), Slice("beta-very-long-key"),
                               Slice("")};
    std::string payload;
    EncodeEagerPayload(keys, value, &payload);
    EXPECT_EQ(payload.size(), EagerPayloadSize(keys, value));
  }
}

TEST(Encoding, LazyRoundTrip) {
  std::string payload;
  EncodeLazyPayload(Slice("user1"), Slice("watch how i met your mother"),
                    &payload);
  Encoding encoding;
  Slice rest;
  ASSERT_TRUE(GetEncoding(payload, &encoding, &rest).ok());
  EXPECT_EQ(encoding, Encoding::kLazy);
  Slice input_key, input_value;
  ASSERT_TRUE(DecodeLazyPayload(rest, &input_key, &input_value).ok());
  EXPECT_EQ(input_key.ToString(), "user1");
  EXPECT_EQ(input_value.ToString(), "watch how i met your mother");
}

TEST(Encoding, LazySizePredictionExact) {
  std::string payload;
  EncodeLazyPayload(Slice("k"), Slice(std::string(200, 'q')), &payload);
  EXPECT_EQ(payload.size(), LazyPayloadSize(Slice("k"),
                                            Slice(std::string(200, 'q'))));
}

TEST(Encoding, BinarySafety) {
  const std::string key1("\x00\x01", 2);
  const std::string key2("\xff\xfe", 2);
  const std::string value("\x80\x00\x7f", 3);
  std::string payload;
  EncodeEagerPayload({Slice(key1), Slice(key2)}, value, &payload);
  Encoding encoding;
  Slice rest;
  ASSERT_TRUE(GetEncoding(payload, &encoding, &rest).ok());
  std::vector<Slice> keys;
  Slice decoded_value;
  ASSERT_TRUE(DecodeEagerPayload(rest, &keys, &decoded_value).ok());
  EXPECT_EQ(keys[0].ToString(), key1);
  EXPECT_EQ(keys[1].ToString(), key2);
  EXPECT_EQ(decoded_value.ToString(), value);
}

TEST(Encoding, RejectsEmptyPayload) {
  Encoding encoding;
  Slice rest;
  EXPECT_TRUE(GetEncoding(Slice(), &encoding, &rest).IsCorruption());
}

TEST(Encoding, RejectsBadFlag) {
  Encoding encoding;
  Slice rest;
  EXPECT_TRUE(GetEncoding(Slice("\x07payload"), &encoding, &rest)
                  .IsCorruption());
}

TEST(Encoding, RejectsTruncatedEagerKeys) {
  std::string payload;
  EncodeEagerPayload({Slice("a-long-key-name")}, Slice("v"), &payload);
  Encoding encoding;
  Slice rest;
  ASSERT_TRUE(
      GetEncoding(Slice(payload.data(), 4), &encoding, &rest).ok());
  std::vector<Slice> keys;
  Slice value;
  EXPECT_TRUE(DecodeEagerPayload(rest, &keys, &value).IsCorruption());
}

TEST(Encoding, ManyKeys) {
  std::vector<std::string> storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 1000; ++i) {
    storage.push_back("key_" + std::to_string(i));
  }
  for (const auto& s : storage) keys.push_back(s);
  std::string payload;
  EncodeEagerPayload(keys, Slice("shared"), &payload);
  Encoding encoding;
  Slice rest;
  ASSERT_TRUE(GetEncoding(payload, &encoding, &rest).ok());
  std::vector<Slice> decoded;
  Slice value;
  ASSERT_TRUE(DecodeEagerPayload(rest, &decoded, &value).ok());
  ASSERT_EQ(decoded.size(), 1000u);
  EXPECT_EQ(decoded[999].ToString(), "key_999");
  EXPECT_EQ(value.ToString(), "shared");
}

}  // namespace
}  // namespace anticombine
}  // namespace antimr
