// Engine layering tests: JobPlan validation, DAG-shaped execution (diamond
// dependencies, dataset GC, cross-stage pipelining), and equivalence of the
// DAG paths with the legacy single-job / driver-loop paths.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "datagen/graph.h"
#include "test_util.h"
#include "workloads/pagerank.h"

namespace antimr {
namespace {

using engine::Executor;
using engine::ExecutorOptions;
using engine::JobPlan;
using engine::PlanResult;
using engine::Stage;

class CountReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t n = 0;
    Slice v;
    while (values->Next(&v)) ++n;
    ctx->Emit(key, std::to_string(n));
  }
};

class IdentityMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

class IdentityReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    Slice v;
    while (values->Next(&v)) ctx->Emit(key, v);
  }
};

/// Mapper that tags each value with a stage label (to check provenance).
class TagMapper : public Mapper {
 public:
  explicit TagMapper(std::string tag) : tag_(std::move(tag)) {}
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    ctx->Emit(key, tag_ + ":" + value.ToString());
  }

 private:
  std::string tag_;
};

JobSpec IdentitySpec(const std::string& name, int reduces) {
  JobSpec spec;
  spec.name = name;
  spec.mapper_factory = []() { return std::make_unique<IdentityMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<IdentityReducer>(); };
  spec.num_reduce_tasks = reduces;
  return spec;
}

JobSpec TagSpec(const std::string& name, const std::string& tag, int reduces) {
  JobSpec spec;
  spec.name = name;
  spec.mapper_factory = [tag]() { return std::make_unique<TagMapper>(tag); };
  spec.reducer_factory = []() { return std::make_unique<IdentityReducer>(); };
  spec.num_reduce_tasks = reduces;
  return spec;
}

JobSpec CountSpec(const std::string& name, int reduces) {
  JobSpec spec;
  spec.name = name;
  spec.mapper_factory = []() { return std::make_unique<IdentityMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = reduces;
  return spec;
}

std::vector<KV> SmallInput(const std::string& prefix, int n) {
  std::vector<KV> records;
  for (int i = 0; i < n; ++i) {
    records.push_back({prefix + std::to_string(i % 7), "v" + std::to_string(i)});
  }
  return records;
}

// ---- Plan validation -------------------------------------------------------

TEST(JobPlan, ValidatesWiring) {
  JobPlan plan;
  ASSERT_TRUE(plan.AddInput("in", MakeSplits(SmallInput("k", 10), 2)).ok());
  EXPECT_FALSE(plan.AddInput("in", {}).ok()) << "duplicate input accepted";
  EXPECT_FALSE(plan.Validate().ok()) << "empty plan accepted";

  Stage stage;
  stage.name = "s";
  stage.spec = IdentitySpec("s", 2);
  stage.inputs = {"missing"};
  stage.output = "out";
  plan.AddStage(stage);
  EXPECT_FALSE(plan.Validate().ok()) << "unknown input dataset accepted";
}

TEST(JobPlan, RejectsCycles) {
  JobPlan plan;
  Stage a;
  a.name = "a";
  a.spec = IdentitySpec("a", 1);
  a.inputs = {"b_out"};
  a.output = "a_out";
  plan.AddStage(a);
  Stage b;
  b.name = "b";
  b.spec = IdentitySpec("b", 1);
  b.inputs = {"a_out"};
  b.output = "b_out";
  plan.AddStage(b);
  const Status st = plan.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(JobPlan, RejectsDuplicateProducers) {
  JobPlan plan;
  ASSERT_TRUE(plan.AddInput("in", MakeSplits(SmallInput("k", 10), 2)).ok());
  for (int i = 0; i < 2; ++i) {
    Stage stage;
    stage.name = "s" + std::to_string(i);
    stage.spec = IdentitySpec(stage.name, 1);
    stage.inputs = {"in"};
    stage.output = "out";  // same output twice
    plan.AddStage(stage);
  }
  EXPECT_FALSE(plan.Validate().ok());
}

// ---- Execution shapes ------------------------------------------------------

// Single-stage plan must match the legacy RunJob path record for record.
TEST(Engine, SingleStageMatchesRunJob) {
  const std::vector<KV> input = SmallInput("key", 200);
  const JobSpec spec = CountSpec("count", 3);

  const std::vector<KV> legacy =
      testing::Canonicalize(testing::MustRun(spec, MakeSplits(input, 4)));

  JobPlan plan;
  ASSERT_TRUE(plan.AddInput("in", MakeSplits(input, 4)).ok());
  Stage stage;
  stage.name = "count";
  stage.spec = spec;
  stage.inputs = {"in"};
  stage.output = "out";
  plan.AddStage(std::move(stage));

  Executor executor;
  PlanResult result;
  const Status st = executor.Run(plan, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(testing::Canonicalize(result.FlatOutput("out")), legacy);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_GT(result.stages[0].metrics.output_records, 0u);
  EXPECT_GT(result.metrics.total_cpu_nanos, 0u);
}

// Diamond: two tagged stages feed one downstream counter; the join stage
// must see both parents' records, and the plan runs as one graph.
TEST(Engine, DiamondDependency) {
  JobPlan plan;
  plan.name = "diamond";
  ASSERT_TRUE(plan.AddInput("left_in", MakeSplits(SmallInput("k", 60), 2)).ok());
  ASSERT_TRUE(
      plan.AddInput("right_in", MakeSplits(SmallInput("k", 40), 2)).ok());

  Stage left;
  left.name = "left";
  left.spec = TagSpec("left", "L", 2);
  left.inputs = {"left_in"};
  left.output = "left_out";
  plan.AddStage(std::move(left));

  Stage right;
  right.name = "right";
  right.spec = TagSpec("right", "R", 3);
  right.inputs = {"right_in"};
  right.output = "right_out";
  plan.AddStage(std::move(right));

  Stage join;
  join.name = "join";
  join.spec = CountSpec("join", 2);
  join.inputs = {"left_out", "right_out"};
  join.output = "joined";
  plan.AddStage(std::move(join));

  Executor executor;
  PlanResult result;
  const Status st = executor.Run(plan, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // 60 + 40 records over 7 keys: every key's count must include both tags.
  const std::vector<KV> joined = result.FlatOutput("joined");
  ASSERT_EQ(joined.size(), 7u);
  uint64_t total = 0;
  for (const KV& kv : joined) total += std::stoull(kv.value);
  EXPECT_EQ(total, 100u);

  // Only the sink is retained; both intermediates were GC'd.
  for (const engine::DatasetInfo& ds : result.datasets) {
    if (ds.name == "joined") {
      EXPECT_TRUE(ds.retained);
      EXPECT_FALSE(ds.released);
    } else if (!ds.external) {
      EXPECT_TRUE(ds.released) << ds.name << " not reclaimed";
    }
  }
}

// A dataset with two consumers must survive until BOTH are done, and a
// retained sink must never be released.
TEST(Engine, DatasetGcWaitsForLastConsumer) {
  JobPlan plan;
  ASSERT_TRUE(plan.AddInput("in", MakeSplits(SmallInput("k", 50), 2)).ok());

  Stage producer;
  producer.name = "producer";
  producer.spec = IdentitySpec("producer", 2);
  producer.inputs = {"in"};
  producer.output = "shared_ds";
  plan.AddStage(std::move(producer));

  for (int i = 0; i < 2; ++i) {
    Stage consumer;
    consumer.name = "consumer" + std::to_string(i);
    consumer.spec = CountSpec(consumer.name, 1 + i);
    consumer.inputs = {"shared_ds"};
    consumer.output = "out" + std::to_string(i);
    plan.AddStage(std::move(consumer));
  }

  Executor executor;
  PlanResult result;
  const Status st = executor.Run(plan, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Both consumers saw the full dataset (they cannot have read a released
  // partition: a reclaimed partition reads as empty and the counts would
  // drop).
  for (int i = 0; i < 2; ++i) {
    const std::vector<KV> out = result.FlatOutput("out" + std::to_string(i));
    uint64_t total = 0;
    for (const KV& kv : out) total += std::stoull(kv.value);
    EXPECT_EQ(total, 50u) << "consumer " << i;
  }
  for (const engine::DatasetInfo& ds : result.datasets) {
    if (ds.name == "shared_ds") {
      EXPECT_FALSE(ds.retained);
      EXPECT_TRUE(ds.released);
      EXPECT_EQ(ds.records, 50u);
    }
  }
}

// ---- Cross-stage pipelining ------------------------------------------------

// Deterministic proof that stage N+1 starts before stage N finishes: stage
// 1's reducer for partition 1 blocks (with a deadline) until stage 2's map
// over partition 0 has run. With a stage barrier this deadlocks until the
// deadline and fails; with partition-level dependencies it passes quickly.
std::atomic<bool> g_stage2_started{false};

/// Routes keys "p0..." to partition 0 and "p1..." to partition 1 so the test
/// controls exactly which reduce task blocks.
class PrefixPartitioner : public Partitioner {
 public:
  int Partition(const Slice& key, int num_partitions) const override {
    (void)num_partitions;
    return key.size() > 1 && key.data()[1] == '1' ? 1 : 0;
  }
};

TEST(Engine, CrossStagePipelining) {
  g_stage2_started.store(false);

  // Stage 1: two reduce partitions with an explicit prefix partitioner.
  JobSpec stage1;
  stage1.name = "gate";
  stage1.num_reduce_tasks = 2;
  stage1.mapper_factory = []() { return std::make_unique<IdentityMapper>(); };
  stage1.partitioner = std::make_shared<PrefixPartitioner>();
  // Partition 0's reducer finishes immediately; partition 1's reducer spins
  // until stage 2's map (over partition 0) has started, with a deadline so
  // a regression fails rather than hangs.
  stage1.reducer_factory = []() {
    class SpinReducer : public Reducer {
     public:
      void Reduce(const Slice& key, ValueIterator* values,
                  ReduceContext* ctx) override {
        Slice v;
        while (values->Next(&v)) ctx->Emit(key, v);
        if (key.size() > 1 && key[1] == '1') {
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(10);
          while (!g_stage2_started.load(std::memory_order_acquire) &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
          }
          EXPECT_TRUE(g_stage2_started.load(std::memory_order_acquire))
              << "stage 2 never started while stage 1 was still running: "
                 "no cross-stage pipelining";
        }
      }
    };
    return std::make_unique<SpinReducer>();
  };

  JobSpec stage2;
  stage2.name = "observe";
  stage2.num_reduce_tasks = 1;
  stage2.mapper_factory = []() {
    class ObserveMapper : public Mapper {
     public:
      void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
        g_stage2_started.store(true, std::memory_order_release);
        ctx->Emit(key, value);
      }
    };
    return std::make_unique<ObserveMapper>();
  };
  stage2.reducer_factory = []() {
    return std::make_unique<IdentityReducer>();
  };

  JobPlan plan;
  plan.name = "pipelining";
  std::vector<KV> input = {{"p0_a", "1"}, {"p0_b", "2"}, {"p1_a", "3"}};
  ASSERT_TRUE(plan.AddInput("in", MakeSplits(input, 1)).ok());
  Stage first;
  first.name = "gate";
  first.spec = stage1;
  first.inputs = {"in"};
  first.output = "mid";
  plan.AddStage(std::move(first));
  Stage second;
  second.name = "observe";
  second.spec = stage2;
  second.inputs = {"mid"};
  second.output = "out";
  plan.AddStage(std::move(second));

  // >= 4 workers: stage 1's spinning reduce must not starve stage 2's map.
  ExecutorOptions options;
  options.num_workers = 4;
  Executor executor(options);
  PlanResult result;
  const Status st = executor.Run(plan, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(g_stage2_started.load());
  EXPECT_EQ(result.FlatOutput("out").size(), 3u);
  // The overlap metric must see the concurrent stage activity.
  EXPECT_GT(result.stage_overlap_nanos, 0u);
}

// ---- PageRank equivalence --------------------------------------------------

// The DAG plan and the legacy per-iteration driver loop must produce
// byte-identical ranks: same per-key value order into every reduce, hence
// the same float summation order, hence the same formatted output.
TEST(Engine, PageRankDagMatchesLegacyLoopExactly) {
  GraphConfig gc;
  gc.num_nodes = 500;
  gc.seed = 7;
  const std::vector<KV> graph = GraphGenerator(gc).Generate();

  workloads::PageRankConfig cfg;
  cfg.num_nodes = gc.num_nodes;
  cfg.num_reduce_tasks = 4;
  const int iterations = 4;

  for (const bool anti : {false, true}) {
    SCOPED_TRACE(anti ? "anti-combining" : "original");
    anticombine::AntiCombineOptions options;
    const anticombine::AntiCombineOptions* anti_ptr = anti ? &options : nullptr;

    workloads::PageRankRunResult legacy;
    ASSERT_TRUE(workloads::RunPageRank(cfg, graph, iterations, anti_ptr,
                                       /*num_map_tasks=*/3, &legacy)
                    .ok());

    workloads::PageRankRunResult dag;
    PlanResult plan_result;
    ASSERT_TRUE(workloads::RunPageRankDag(cfg, graph, iterations, anti_ptr,
                                          /*num_map_tasks=*/3,
                                          /*executor=*/nullptr, &dag,
                                          &plan_result)
                    .ok());
    EXPECT_EQ(plan_result.stages.size(), static_cast<size_t>(iterations));

    // Byte-identical: same keys, same formatted rank strings, same order.
    ASSERT_EQ(legacy.final_ranks.size(), dag.final_ranks.size());
    for (size_t i = 0; i < legacy.final_ranks.size(); ++i) {
      ASSERT_EQ(legacy.final_ranks[i].key, dag.final_ranks[i].key)
          << "at record " << i;
      ASSERT_EQ(legacy.final_ranks[i].value, dag.final_ranks[i].value)
          << "at record " << i << " node=" << legacy.final_ranks[i].key;
    }
  }
}

// Executor reuse: the same executor runs several plans back to back on its
// persistent pool.
TEST(Engine, ExecutorIsReusable) {
  Executor executor;
  for (int round = 0; round < 3; ++round) {
    JobPlan plan;
    ASSERT_TRUE(plan.AddInput("in", MakeSplits(SmallInput("k", 30), 2)).ok());
    Stage stage;
    stage.name = "count";
    stage.spec = CountSpec("count", 2);
    stage.inputs = {"in"};
    stage.output = "out";
    plan.AddStage(std::move(stage));
    PlanResult result;
    const Status st = executor.Run(plan, &result);
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.ToString();
    EXPECT_EQ(result.FlatOutput("out").size(), 7u);
  }
}

/// Env wrapper whose writes always fail — the simplest way to push a plan
/// onto its failure path without touching the fault-injection harness.
class WriteFailEnv : public Env {
 public:
  explicit WriteFailEnv(std::unique_ptr<Env> base) : base_(std::move(base)) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    (void)fname;
    (void)file;
    return Status::IOError("writes disabled");
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    return base_->NewSequentialFile(fname, file);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    return base_->NewRandomAccessFile(fname, file);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status DeleteFile(const std::string& fname) override {
    return base_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status ListFiles(std::vector<std::string>* names) override {
    return base_->ListFiles(names);
  }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  std::unique_ptr<Env> base_;
};

// A failed plan must not strand intermediate datasets: consumers skipped by
// the failure cascade never call ConsumerDone, so the run epilogue has to
// force-release whatever is still held.
TEST(Engine, FailedPlanReleasesAllDatasets) {
  WriteFailEnv env(NewMemEnv());
  ExecutorOptions options;
  options.env = &env;
  Executor executor(options);

  JobPlan plan;
  ASSERT_TRUE(plan.AddInput("in", MakeSplits(SmallInput("k", 30), 2)).ok());
  Stage first;
  first.name = "identity";
  first.spec = IdentitySpec("identity", 2);
  first.inputs = {"in"};
  first.output = "mid";
  plan.AddStage(std::move(first));
  Stage second;
  second.name = "count";
  second.spec = CountSpec("count", 2);
  second.inputs = {"mid"};
  second.output = "out";
  plan.AddStage(std::move(second));

  PlanResult result;
  const Status st = executor.Run(plan, &result);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  ASSERT_FALSE(result.datasets.empty());
  for (const engine::DatasetInfo& ds : result.datasets) {
    if (ds.external || ds.retained) continue;
    EXPECT_TRUE(ds.released) << "dataset " << ds.name
                             << " leaked on the failure path";
  }
}

// LocalCluster facade exposes a lazily-created engine executor bound to the
// cluster's storage.
TEST(Engine, LocalClusterExecutor) {
  LocalCluster cluster(LocalCluster::Options{});
  engine::Executor* executor = cluster.executor();
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor, cluster.executor()) << "executor not cached";

  JobPlan plan;
  ASSERT_TRUE(plan.AddInput("in", MakeSplits(SmallInput("k", 20), 2)).ok());
  Stage stage;
  stage.name = "count";
  stage.spec = CountSpec("count", 2);
  stage.inputs = {"in"};
  stage.output = "out";
  plan.AddStage(std::move(stage));
  PlanResult result;
  const Status st = executor->Run(plan, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.FlatOutput("out").size(), 7u);
}

}  // namespace
}  // namespace antimr
