#include "common/logging.h"

#include <gtest/gtest.h>

#include <thread>

namespace antimr {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(Logging, MacroBelowThresholdDoesNotEvaluateStream) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  ANTIMR_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  ANTIMR_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(before);
}

TEST(Logging, ParseLogLevelAcceptsTheEnvVarVocabulary) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  // Case-insensitive, as env vars tend to be typed.
  EXPECT_TRUE(ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("Info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(Logging, ParseLogLevelRejectsJunkAndLeavesOutputAlone) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("warnings-please", &level));
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(Logging, ThreadIdsAreStablePerThreadAndDistinctAcrossThreads) {
  const int mine = LogThreadId();
  EXPECT_EQ(mine, LogThreadId());
  int theirs = mine;
  std::thread t([&] { theirs = LogThreadId(); });
  t.join();
  EXPECT_NE(mine, theirs);
}

}  // namespace
}  // namespace antimr
