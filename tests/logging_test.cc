#include "common/logging.h"

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(Logging, MacroBelowThresholdDoesNotEvaluateStream) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  ANTIMR_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  ANTIMR_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(before);
}

}  // namespace
}  // namespace antimr
