// Unit tests of AntiCombiner: decoding encoded records in the map-side
// combine pass, applying the original Combiner, and re-encoding with
// cross-key EagerSH value groups.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "anticombine/anti_reducer.h"
#include "anticombine/encoding.h"
#include "mr/metrics.h"
#include "mr/reduce_task.h"

namespace antimr {
namespace anticombine {
namespace {

class SumCombiner : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    long total = 0;
    Slice v;
    while (values->Next(&v)) total += std::stol(v.ToString());
    ctx->Emit(key, std::to_string(total));
  }
};

class NopMapper : public Mapper {
 public:
  void Map(const Slice&, const Slice&, MapContext*) override {}
};

class KeyedPayloadIterator : public ValueIterator {
 public:
  explicit KeyedPayloadIterator(std::vector<KV> items)
      : items_(std::move(items)) {}
  bool Next(Slice* value) override {
    if (pos_ >= items_.size()) return false;
    *value = items_[pos_].value;
    ++pos_;
    return true;
  }
  Slice key() const override { return items_[pos_ - 1].key; }

 private:
  std::vector<KV> items_;
  size_t pos_ = 0;
};

std::string Eager(const std::vector<std::string>& other_keys,
                  const std::string& value) {
  std::vector<Slice> keys(other_keys.begin(), other_keys.end());
  std::string payload;
  EncodeEagerPayload(keys, value, &payload);
  return payload;
}

struct DecodedOut {
  std::vector<std::string> keys;  // rep + others, rep first
  std::string value;
};

DecodedOut DecodeOut(const KV& record) {
  DecodedOut out;
  Encoding encoding;
  Slice rest;
  EXPECT_TRUE(GetEncoding(record.value, &encoding, &rest).ok());
  EXPECT_EQ(encoding, Encoding::kEager) << "AntiCombiner re-encodes eagerly";
  std::vector<Slice> others;
  Slice value;
  EXPECT_TRUE(DecodeEagerPayload(rest, &others, &value).ok());
  out.keys.push_back(record.key);
  for (const Slice& k : others) out.keys.push_back(k.ToString());
  out.value = value.ToString();
  return out;
}

class AntiCombinerTest : public ::testing::Test {
 protected:
  std::vector<KV> Run(const std::vector<std::vector<KV>>& groups) {
    AntiCombiner combiner([]() { return std::make_unique<SumCombiner>(); },
                          []() { return std::make_unique<NopMapper>(); });
    TaskInfo info;
    info.num_reduce_tasks = 1;
    info.shuffle_partition = 0;
    static HashPartitioner partitioner;
    info.partitioner = &partitioner;
    info.key_cmp = BytewiseCompare;
    info.grouping_cmp = BytewiseCompare;
    info.metrics = &metrics_;
    std::vector<KV> out;
    CollectingContext ctx(&out);
    combiner.Setup(info, &ctx);
    for (const auto& group : groups) {
      KeyedPayloadIterator it(group);
      combiner.Reduce(group.front().key, &it, &ctx);
    }
    combiner.Cleanup(&ctx);
    return out;
  }

  JobMetrics metrics_;
};

TEST_F(AntiCombinerTest, CombinesDecodedValuesPerKey) {
  auto out = Run({{{"a", Eager({}, "1")}, {"a", Eager({}, "2")}},
                  {{"b", Eager({}, "5")}}});
  ASSERT_EQ(out.size(), 2u);
  std::map<std::string, std::string> values;
  for (const KV& kv : out) values[kv.key] = DecodeOut(kv).value;
  EXPECT_EQ(values["a"], "3");
  EXPECT_EQ(values["b"], "5");
}

TEST_F(AntiCombinerTest, EncodedKeysAreExpandedBeforeCombining) {
  // (a, ({b, c}, 2)) stands for a=2, b=2, c=2; combining each key alone.
  auto out = Run({{{"a", Eager({"b", "c"}, "2")}}});
  // All three keys combine to "2" — identical values — so the re-encoder
  // collapses them back into ONE eager record spanning the keys.
  ASSERT_EQ(out.size(), 1u);
  DecodedOut d = DecodeOut(out[0]);
  EXPECT_EQ(d.value, "2");
  EXPECT_EQ(d.keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(AntiCombinerTest, CrossKeyValueGroupingAfterCombine) {
  // WordCount shape: x=1+1, y=2, z=1+1 -> combined x=2, y=2, z=2: one
  // record for all three keys.
  auto out = Run({{{"x", Eager({}, "1")}, {"x", Eager({}, "1")}},
                  {{"y", Eager({}, "2")}},
                  {{"z", Eager({}, "1")}, {"z", Eager({}, "1")}}});
  ASSERT_EQ(out.size(), 1u);
  DecodedOut d = DecodeOut(out[0]);
  EXPECT_EQ(d.value, "2");
  EXPECT_EQ(d.keys, (std::vector<std::string>{"x", "y", "z"}));
}

TEST_F(AntiCombinerTest, OutputIsKeySorted) {
  auto out = Run({{{"d", Eager({}, "4")}},
                  {{"m", Eager({}, "13")}},
                  {{"z", Eager({}, "26")}}});
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].key, out[i].key)
        << "segments must stay merge-compatible";
  }
}

TEST_F(AntiCombinerTest, EmptyPassEmitsNothing) {
  EXPECT_TRUE(Run({}).empty());
}

}  // namespace
}  // namespace anticombine
}  // namespace antimr
