// Tests of the typed API layer: serializer round-trips and order
// preservation, typed jobs end to end, and typed jobs under Anti-Combining.
#include "mr/typed.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "test_util.h"

namespace antimr {
namespace {

using testing::Canonicalize;
using testing::MustRun;

template <typename T>
std::string Enc(const T& v) {
  std::string out;
  Serializer<T>::Encode(v, &out);
  return out;
}

template <typename T>
T Dec(const std::string& raw) {
  T v{};
  EXPECT_TRUE(Serializer<T>::Decode(raw, &v));
  return v;
}

TEST(Serializer, StringRoundTrip) {
  for (const std::string& s : std::vector<std::string>{
           "", "abc", std::string("\0x\xff", 3)}) {
    EXPECT_EQ(Dec<std::string>(Enc(s)), s);
  }
}

TEST(Serializer, U64RoundTripAndOrder) {
  const uint64_t values[] = {0, 1, 255, 256, uint64_t{1} << 40, UINT64_MAX};
  for (uint64_t v : values) EXPECT_EQ(Dec<uint64_t>(Enc(v)), v);
  for (uint64_t a : values) {
    for (uint64_t b : values) {
      EXPECT_EQ(a < b, Enc(a) < Enc(b)) << a << " vs " << b;
    }
  }
}

TEST(Serializer, I64RoundTripAndOrder) {
  const int64_t values[] = {INT64_MIN, -1000000, -1, 0, 1, 42, INT64_MAX};
  for (int64_t v : values) EXPECT_EQ(Dec<int64_t>(Enc(v)), v);
  for (int64_t a : values) {
    for (int64_t b : values) {
      EXPECT_EQ(a < b, Enc(a) < Enc(b)) << a << " vs " << b;
    }
  }
}

TEST(Serializer, DoubleRoundTripAndOrder) {
  const double values[] = {-std::numeric_limits<double>::infinity(),
                           -1e300,
                           -1.5,
                           -0.0,
                           0.0,
                           1e-300,
                           2.75,
                           1e300,
                           std::numeric_limits<double>::infinity()};
  for (double v : values) {
    EXPECT_EQ(Dec<double>(Enc(v)), v) << v;
  }
  for (double a : values) {
    for (double b : values) {
      if (a < b) {
        EXPECT_LE(Enc(a), Enc(b)) << a << " vs " << b;
      }
    }
  }
}

TEST(Serializer, DecodeRejectsWrongWidth) {
  uint64_t u;
  EXPECT_FALSE(Serializer<uint64_t>::Decode(Slice("abc"), &u));
  double d;
  EXPECT_FALSE(Serializer<double>::Decode(Slice(""), &d));
}

// ---------------------------------------------------------------------------
// A typed job: histogram of value buckets. Input (uint64 id, double x);
// intermediate (uint64 bucket, uint64 one); output (uint64 bucket, count).

class BucketMapper : public TypedMapper<uint64_t, double, uint64_t, uint64_t> {
 public:
  void TypedMap(const uint64_t& key, const double& x,
                Context* ctx) override {
    (void)key;
    ctx->Emit(static_cast<uint64_t>(x * 10), 1);
  }
};

class SumReducer
    : public TypedReducer<uint64_t, uint64_t, uint64_t, uint64_t> {
 public:
  void TypedReduce(const uint64_t& key, TypedValueIterator<uint64_t>* values,
                   Context* ctx) override {
    uint64_t total = 0;
    uint64_t v;
    while (values->Next(&v)) total += v;
    ctx->Emit(key, total);
  }
};

JobSpec BucketJob() {
  JobSpec spec;
  spec.name = "bucket_histogram";
  spec.mapper_factory = []() { return std::make_unique<BucketMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<SumReducer>(); };
  spec.combiner_factory = []() { return std::make_unique<SumReducer>(); };
  spec.num_reduce_tasks = 3;
  return spec;
}

std::vector<KV> BucketInput(int n) {
  std::vector<KV> input;
  for (int i = 0; i < n; ++i) {
    input.push_back(MakeTypedKV<uint64_t, double>(
        static_cast<uint64_t>(i), (i % 10) / 10.0 + 0.05));
  }
  return input;
}

TEST(TypedJob, EndToEnd) {
  auto out = MustRun(BucketJob(), MakeSplits(BucketInput(1000), 4));
  ASSERT_EQ(out.size(), 10u);
  uint64_t total = 0;
  for (const KV& kv : out) {
    uint64_t bucket, count;
    ASSERT_TRUE(Serializer<uint64_t>::Decode(kv.key, &bucket));
    ASSERT_TRUE(Serializer<uint64_t>::Decode(kv.value, &count));
    EXPECT_LT(bucket, 10u);
    EXPECT_EQ(count, 100u);
    total += count;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(TypedJob, NumericKeysReduceInNumericOrder) {
  // Big-endian keys: reduce calls ascend numerically even past 255.
  class CheckReducer
      : public TypedReducer<uint64_t, uint64_t, uint64_t, uint64_t> {
   public:
    void TypedReduce(const uint64_t& key, TypedValueIterator<uint64_t>* values,
                     Context* ctx) override {
      if (!first_) {
        EXPECT_GT(key, last_) << "keys must ascend numerically";
      }
      first_ = false;
      last_ = key;
      uint64_t v;
      while (values->Next(&v)) {
      }
      ctx->Emit(key, 1);
    }
    uint64_t last_ = 0;
    bool first_ = true;
  };
  class WideMapper
      : public TypedMapper<uint64_t, double, uint64_t, uint64_t> {
   public:
    void TypedMap(const uint64_t& key, const double&, Context* ctx) override {
      ctx->Emit(key * 1000, 1);
    }
  };
  JobSpec spec = BucketJob();
  spec.mapper_factory = []() { return std::make_unique<WideMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<CheckReducer>(); };
  spec.combiner_factory = nullptr;
  spec.num_reduce_tasks = 1;
  auto out = MustRun(spec, MakeSplits(BucketInput(500), 3));
  EXPECT_EQ(out.size(), 500u);
}

TEST(TypedJob, AntiCombiningEquivalence) {
  testing::ExpectEquivalent(BucketJob(), MakeSplits(BucketInput(800), 3),
                            anticombine::AntiCombineOptions());
}

TEST(TypedJob, MalformedRecordsSkipped) {
  JobSpec spec = BucketJob();
  std::vector<KV> input = BucketInput(10);
  input.push_back({"garbage-key", "garbage-value"});  // wrong widths
  auto out = MustRun(spec, {MakeSplit(input)});
  uint64_t total = 0;
  for (const KV& kv : out) {
    uint64_t count;
    ASSERT_TRUE(Serializer<uint64_t>::Decode(kv.value, &count));
    total += count;
  }
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace antimr
