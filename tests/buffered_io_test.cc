#include "io/buffered_io.h"

#include <gtest/gtest.h>

#include "io/env.h"

namespace antimr {
namespace {

class BufferedIoTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  std::unique_ptr<BufferedWriter> NewWriter(const std::string& fname,
                                            size_t buffer = 64) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile(fname, &file).ok());
    return std::make_unique<BufferedWriter>(std::move(file), buffer);
  }

  std::unique_ptr<BufferedReader> NewReader(const std::string& fname,
                                            size_t buffer = 64) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(fname, &file).ok());
    return std::make_unique<BufferedReader>(std::move(file), buffer);
  }

  std::unique_ptr<Env> env_;
};

TEST_F(BufferedIoTest, RoundTripPrimitives) {
  auto writer = NewWriter("f");
  ASSERT_TRUE(writer->AppendVarint32(12345).ok());
  ASSERT_TRUE(writer->AppendVarint64(1ULL << 50).ok());
  ASSERT_TRUE(writer->AppendLengthPrefixed(Slice("payload")).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto reader = NewReader("f");
  uint32_t v32;
  uint64_t v64;
  std::string s;
  ASSERT_TRUE(reader->ReadVarint32(&v32).ok());
  ASSERT_TRUE(reader->ReadVarint64(&v64).ok());
  ASSERT_TRUE(reader->ReadLengthPrefixed(&s).ok());
  EXPECT_EQ(v32, 12345u);
  EXPECT_EQ(v64, 1ULL << 50);
  EXPECT_EQ(s, "payload");
  EXPECT_TRUE(reader->AtEof());
}

TEST_F(BufferedIoTest, LargePayloadSpansBufferBoundaries) {
  const std::string big(10000, 'z');
  auto writer = NewWriter("f", /*buffer=*/32);
  ASSERT_TRUE(writer->AppendLengthPrefixed(big).ok());
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("f", /*buffer=*/32);
  std::string out;
  ASSERT_TRUE(reader->ReadLengthPrefixed(&out).ok());
  EXPECT_EQ(out, big);
}

TEST_F(BufferedIoTest, ManySmallRecordsAcrossBoundaries) {
  auto writer = NewWriter("f", 16);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(writer->AppendVarint32(static_cast<uint32_t>(i * 7)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("f", 16);
  for (int i = 0; i < 1000; ++i) {
    uint32_t v;
    ASSERT_TRUE(reader->ReadVarint32(&v).ok());
    EXPECT_EQ(v, static_cast<uint32_t>(i * 7));
  }
  EXPECT_TRUE(reader->AtEof());
}

TEST_F(BufferedIoTest, ReadPastEofIsCorruption) {
  auto writer = NewWriter("f");
  ASSERT_TRUE(writer->Append("x").ok());
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("f");
  std::string out;
  EXPECT_TRUE(reader->ReadExact(5, &out).IsCorruption());
}

TEST_F(BufferedIoTest, BytesWrittenTracksPayload) {
  auto writer = NewWriter("f");
  ASSERT_TRUE(writer->Append("abcde").ok());
  EXPECT_EQ(writer->bytes_written(), 5u);
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("f", &size).ok());
  EXPECT_EQ(size, 5u);
}

TEST_F(BufferedIoTest, DestructorFlushes) {
  {
    auto writer = NewWriter("f");
    ASSERT_TRUE(writer->Append("buffered but never closed").ok());
  }
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("f", &size).ok());
  EXPECT_EQ(size, 25u);
}

TEST_F(BufferedIoTest, AppendLargerThanBufferBypasses) {
  auto writer = NewWriter("f", 8);
  const std::string big(100, 'b');
  ASSERT_TRUE(writer->Append("ab").ok());
  ASSERT_TRUE(writer->Append(big).ok());
  ASSERT_TRUE(writer->Append("cd").ok());
  ASSERT_TRUE(writer->Close().ok());
  auto reader = NewReader("f");
  std::string all;
  ASSERT_TRUE(reader->ReadExact(104, &all).ok());
  EXPECT_EQ(all, "ab" + big + "cd");
}

}  // namespace
}  // namespace antimr
