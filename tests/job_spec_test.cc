#include "mr/job_spec.h"

#include <gtest/gtest.h>

namespace antimr {
namespace {

class NopMapper : public Mapper {
 public:
  void Map(const Slice&, const Slice&, MapContext*) override {}
};
class NopReducer : public Reducer {
 public:
  void Reduce(const Slice&, ValueIterator*, ReduceContext*) override {}
};

JobSpec ValidSpec() {
  JobSpec spec;
  spec.mapper_factory = []() { return std::make_unique<NopMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<NopReducer>(); };
  return spec;
}

TEST(JobSpec, ValidByDefault) { EXPECT_TRUE(ValidSpec().Validate().ok()); }

TEST(JobSpec, RequiresMapper) {
  JobSpec spec = ValidSpec();
  spec.mapper_factory = nullptr;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(JobSpec, RequiresReducer) {
  JobSpec spec = ValidSpec();
  spec.reducer_factory = nullptr;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(JobSpec, RequiresPartitioner) {
  JobSpec spec = ValidSpec();
  spec.partitioner = nullptr;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(JobSpec, RequiresPositiveReduceTasks) {
  JobSpec spec = ValidSpec();
  spec.num_reduce_tasks = 0;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.num_reduce_tasks = -3;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(JobSpec, RejectsTinyMapBuffer) {
  JobSpec spec = ValidSpec();
  spec.map_buffer_bytes = 16;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(JobSpec, GroupingDefaultsToKeyComparator) {
  JobSpec spec = ValidSpec();
  KeyComparator g = spec.EffectiveGroupingCmp();
  EXPECT_EQ(g(Slice("a"), Slice("b")) < 0, true);
  // Custom grouping comparator takes precedence.
  spec.grouping_cmp = [](const Slice&, const Slice&) { return 0; };
  EXPECT_EQ(spec.EffectiveGroupingCmp()(Slice("a"), Slice("b")), 0);
}

TEST(JobSpec, CombinerIsOptional) {
  JobSpec spec = ValidSpec();
  EXPECT_EQ(spec.combiner_factory, nullptr);
  EXPECT_TRUE(spec.Validate().ok());
}

}  // namespace
}  // namespace antimr
