// Randomized-program property test: for seeded pseudo-random Map functions
// with arbitrary fan-out, key spread, value sharing, and duplicates, the
// Anti-Combining transform must preserve the output exactly, across a grid
// of transform configurations. This is the broadest form of the paper's
// "can be enabled for any MapReduce program" claim.
#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "test_util.h"

namespace antimr {
namespace {

using anticombine::AntiCombineOptions;
using testing::ExpectEquivalent;

// A deterministic "random program": behaviour is a pure function of
// (program seed, input record), so LazySH re-execution is sound.
class FuzzMapper : public Mapper {
 public:
  explicit FuzzMapper(uint64_t seed) : seed_(seed) {}

  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    Random rng(Hash64(key, seed_) ^ Hash64(value));
    const uint64_t fan_out = rng.Uniform(7);  // 0..6, including empty
    const bool share_values = rng.OneIn(2);
    const uint64_t key_space = 1 + rng.Uniform(200);
    std::string shared = "sv" + std::to_string(rng.Uniform(50));
    for (uint64_t i = 0; i < fan_out; ++i) {
      std::string out_key = "k" + std::to_string(rng.Uniform(key_space));
      std::string out_value =
          share_values ? shared : "v" + std::to_string(rng.Next() % 1000);
      ctx->Emit(out_key, out_value);
      if (rng.OneIn(5)) ctx->Emit(out_key, out_value);  // exact duplicate
      if (rng.OneIn(7)) ctx->Emit(out_key, "");          // empty value
    }
  }

 private:
  uint64_t seed_;
};

class DigestReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t digest = 0, count = 0;
    Slice v;
    while (values->Next(&v)) {
      digest += HashMix64(Hash64(v));  // order-insensitive, multiset-exact
      ++count;
    }
    ctx->Emit(key, std::to_string(count) + "/" + std::to_string(digest));
  }
};

class ForwardingCombiner : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    Slice v;
    while (values->Next(&v)) ctx->Emit(key, v);
  }
};

struct FuzzParam {
  uint64_t seed;
  uint64_t threshold;
  int window;
  bool combiner;
  bool map_phase_combiner;
  size_t map_buffer;
};

class FuzzEquivalence : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzEquivalence, OutputIdentical) {
  const FuzzParam& p = GetParam();
  JobSpec spec;
  spec.name = "fuzz";
  const uint64_t seed = p.seed;
  spec.mapper_factory = [seed]() {
    return std::make_unique<FuzzMapper>(seed);
  };
  spec.reducer_factory = []() { return std::make_unique<DigestReducer>(); };
  if (p.combiner) {
    spec.combiner_factory = []() {
      return std::make_unique<ForwardingCombiner>();
    };
  }
  spec.num_reduce_tasks = 1 + static_cast<int>(p.seed % 7);
  spec.map_buffer_bytes = p.map_buffer;

  Random rng(p.seed * 31 + 7);
  std::vector<KV> input;
  for (int i = 0; i < 250; ++i) {
    input.push_back({"in" + std::to_string(rng.Next() % 100000),
                     "payload" + std::to_string(rng.Uniform(500))});
  }

  AntiCombineOptions options;
  options.lazy_threshold_nanos = p.threshold;
  options.cross_call_window = p.window;
  options.map_phase_combiner = p.map_phase_combiner;
  options.shared_memory_bytes = 4096;  // small: spills in play
  ExpectEquivalent(spec, MakeSplits(std::move(input), 3), options);
}

std::vector<FuzzParam> MakeGrid() {
  std::vector<FuzzParam> grid;
  constexpr uint64_t kInf = AntiCombineOptions::kInfiniteT;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    // Rotate configurations across seeds to cover the matrix cheaply.
    grid.push_back({seed, seed % 2 ? kInf : 0, seed % 3 == 0 ? 8 : 1,
                    seed % 2 == 0, seed % 4 < 2,
                    seed % 5 == 0 ? size_t{4096} : size_t{1} << 20});
  }
  // A few adversarial corners explicitly.
  grid.push_back({99, kInf, 64, true, true, 4096});
  grid.push_back({100, 400'000, 1, true, false, 8192});
  grid.push_back({101, kInf, 16, false, true, size_t{1} << 20});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<FuzzParam>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace antimr
