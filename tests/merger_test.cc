#include "io/merger.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace antimr {
namespace {

using Records = std::vector<std::pair<std::string, std::string>>;

std::unique_ptr<KVStream> Stream(const Records* records) {
  return std::make_unique<VectorStream>(records);
}

Records Drain(MergingStream* stream) {
  Records out;
  while (stream->Valid()) {
    out.emplace_back(stream->key().ToString(), stream->value().ToString());
    EXPECT_TRUE(stream->Next().ok());
  }
  return out;
}

TEST(Merger, MergesSortedInputs) {
  Records a = {{"a", "1"}, {"c", "3"}, {"e", "5"}};
  Records b = {{"b", "2"}, {"d", "4"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST(Merger, NoInputs) {
  MergingStream merged({}, BytewiseCompare);
  EXPECT_FALSE(merged.Valid());
}

TEST(Merger, AllInputsEmpty) {
  Records a, b;
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  EXPECT_FALSE(merged.Valid());
}

TEST(Merger, StableOnEqualKeys) {
  // Equal keys must come out in input-stream order (determinism).
  Records a = {{"k", "from_a1"}, {"k", "from_a2"}};
  Records b = {{"k", "from_b"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, "from_a1");
  EXPECT_EQ(out[1].second, "from_a2");
  EXPECT_EQ(out[2].second, "from_b");
}

TEST(Merger, CustomComparator) {
  // Reverse order merge.
  auto reverse_cmp = [](const Slice& a, const Slice& b) {
    return b.compare(a);
  };
  Records a = {{"z", "1"}, {"m", "2"}, {"a", "3"}};
  Records b = {{"y", "4"}, {"b", "5"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), reverse_cmp);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i - 1].first, out[i].first);
  }
}

TEST(Merger, ManyStreamsRandomized) {
  Random rng(99);
  std::vector<Records> sources(17);
  Records expected;
  for (auto& source : sources) {
    const size_t n = rng.Uniform(30);
    for (size_t i = 0; i < n; ++i) {
      source.emplace_back("key" + std::to_string(rng.Uniform(1000)),
                          std::to_string(rng.Next()));
    }
    std::sort(source.begin(), source.end());
    expected.insert(expected.end(), source.begin(), source.end());
  }
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::unique_ptr<KVStream>> inputs;
  for (const auto& source : sources) inputs.push_back(Stream(&source));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, expected[i].first);
  }
}

Records DrainBatched(MergingStream* stream, size_t max_records = 1024) {
  Records out;
  RecordBatch batch;
  BatchOptions opts;
  opts.max_records = max_records;
  while (true) {
    EXPECT_TRUE(stream->NextBatch(&batch, opts).ok());
    if (batch.empty()) break;
    for (const RecordRef& r : batch) {
      out.emplace_back(r.key.ToString(), r.value.ToString());
    }
  }
  return out;
}

// The vectorized winner-drain (batches bounded by the second-best head key)
// must produce byte-identical output to the record-wise merge, including
// the stream-index tie-break on equal keys.
TEST(Merger, BatchedDrainMatchesRecordDrain) {
  Random rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Records> sources(1 + rng.Uniform(9));
    for (auto& source : sources) {
      const size_t n = rng.Uniform(200);
      for (size_t i = 0; i < n; ++i) {
        // Narrow key space: plenty of duplicates across (and within)
        // streams, exercising the take_equal tie-break.
        source.emplace_back("k" + std::to_string(rng.Uniform(25)),
                            std::to_string(rng.Next()));
      }
      std::sort(source.begin(), source.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    auto make_merge = [&]() {
      std::vector<std::unique_ptr<KVStream>> inputs;
      for (const auto& source : sources) inputs.push_back(Stream(&source));
      return std::make_unique<MergingStream>(std::move(inputs),
                                             BytewiseCompare);
    };
    auto record_merge = make_merge();
    const Records expected = Drain(record_merge.get());
    for (const size_t max_records : {size_t{1}, size_t{7}, size_t{1024}}) {
      auto batch_merge = make_merge();
      EXPECT_EQ(DrainBatched(batch_merge.get(), max_records), expected)
          << "trial " << trial << " max_records " << max_records;
    }
  }
}

// A caller-supplied stop_key must combine with the internal second-best
// bound: the batch never crosses the caller's bound, and the stream head
// lands exactly on the first excluded record.
TEST(Merger, BatchedDrainHonorsCallerBound) {
  Records a = {{"a", "1"}, {"c", "3"}, {"e", "5"}, {"g", "7"}};
  Records b = {{"b", "2"}, {"d", "4"}, {"f", "6"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), BytewiseCompare);

  const Slice stop("d");
  const KeyComparator cmp = BytewiseCompare;
  BatchOptions opts;
  opts.stop_key = &stop;
  opts.take_equal = false;
  opts.cmp = &cmp;
  Records out;
  RecordBatch batch;
  while (true) {
    EXPECT_TRUE(merged.NextBatch(&batch, opts).ok());
    if (batch.empty()) break;
    for (const RecordRef& r : batch) {
      out.emplace_back(r.key.ToString(), r.value.ToString());
    }
  }
  const Records expected = {{"a", "1"}, {"b", "2"}, {"c", "3"}};
  EXPECT_EQ(out, expected);
  ASSERT_TRUE(merged.Valid());
  EXPECT_EQ(merged.key().ToString(), "d");
  // The remainder is still intact once the bound is lifted.
  EXPECT_EQ(Drain(&merged),
            (Records{{"d", "4"}, {"e", "5"}, {"f", "6"}, {"g", "7"}}));
}

TEST(Merger, SingleStreamPassesThrough) {
  Records a = {{"a", "1"}, {"b", "2"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  EXPECT_EQ(out, a);
}

}  // namespace
}  // namespace antimr
