#include "io/merger.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace antimr {
namespace {

using Records = std::vector<std::pair<std::string, std::string>>;

std::unique_ptr<KVStream> Stream(const Records* records) {
  return std::make_unique<VectorStream>(records);
}

Records Drain(MergingStream* stream) {
  Records out;
  while (stream->Valid()) {
    out.emplace_back(stream->key().ToString(), stream->value().ToString());
    EXPECT_TRUE(stream->Next().ok());
  }
  return out;
}

TEST(Merger, MergesSortedInputs) {
  Records a = {{"a", "1"}, {"c", "3"}, {"e", "5"}};
  Records b = {{"b", "2"}, {"d", "4"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST(Merger, NoInputs) {
  MergingStream merged({}, BytewiseCompare);
  EXPECT_FALSE(merged.Valid());
}

TEST(Merger, AllInputsEmpty) {
  Records a, b;
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  EXPECT_FALSE(merged.Valid());
}

TEST(Merger, StableOnEqualKeys) {
  // Equal keys must come out in input-stream order (determinism).
  Records a = {{"k", "from_a1"}, {"k", "from_a2"}};
  Records b = {{"k", "from_b"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, "from_a1");
  EXPECT_EQ(out[1].second, "from_a2");
  EXPECT_EQ(out[2].second, "from_b");
}

TEST(Merger, CustomComparator) {
  // Reverse order merge.
  auto reverse_cmp = [](const Slice& a, const Slice& b) {
    return b.compare(a);
  };
  Records a = {{"z", "1"}, {"m", "2"}, {"a", "3"}};
  Records b = {{"y", "4"}, {"b", "5"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  inputs.push_back(Stream(&b));
  MergingStream merged(std::move(inputs), reverse_cmp);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i - 1].first, out[i].first);
  }
}

TEST(Merger, ManyStreamsRandomized) {
  Random rng(99);
  std::vector<Records> sources(17);
  Records expected;
  for (auto& source : sources) {
    const size_t n = rng.Uniform(30);
    for (size_t i = 0; i < n; ++i) {
      source.emplace_back("key" + std::to_string(rng.Uniform(1000)),
                          std::to_string(rng.Next()));
    }
    std::sort(source.begin(), source.end());
    expected.insert(expected.end(), source.begin(), source.end());
  }
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::unique_ptr<KVStream>> inputs;
  for (const auto& source : sources) inputs.push_back(Stream(&source));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, expected[i].first);
  }
}

TEST(Merger, SingleStreamPassesThrough) {
  Records a = {{"a", "1"}, {"b", "2"}};
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(Stream(&a));
  MergingStream merged(std::move(inputs), BytewiseCompare);
  Records out = Drain(&merged);
  EXPECT_EQ(out, a);
}

}  // namespace
}  // namespace antimr
