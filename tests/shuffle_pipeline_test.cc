// Tests for the streaming shuffle pipeline: block-framed segments, CRC
// verification on read, bounded reader memory, and the pipelined (fetch
// overlaps map wave) vs barrier execution models.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mr/job_runner.h"
#include "mr/reduce_task.h"
#include "mr/shuffle.h"
#include "test_util.h"

namespace antimr {
namespace {

using testing::Canonicalize;

std::vector<KV> MakeSortedRecords(int n, size_t value_bytes = 32) {
  std::vector<KV> records;
  records.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%08d", i);
    records.push_back(
        {key, std::string(value_bytes, static_cast<char>('a' + i % 26)) +
                  std::to_string(i)});
  }
  return records;
}

Status WriteTestSegment(Env* env, const std::string& fname,
                        const std::vector<KV>& records, const Codec* codec,
                        size_t block_bytes, SegmentWriteResult* result) {
  KVVectorStream in(&records);
  uint64_t nanos = 0;
  return WriteSegment(env, fname, &in, codec, &nanos, result, block_bytes);
}

class BlockSegmentTest : public ::testing::TestWithParam<CodecType> {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }
  std::unique_ptr<Env> env_;
};

TEST_P(BlockSegmentTest, MultiBlockRoundTrip) {
  const Codec* codec = GetCodec(GetParam());
  const std::vector<KV> records = MakeSortedRecords(2000);
  SegmentWriteResult wr;
  ASSERT_TRUE(
      WriteTestSegment(env_.get(), "seg", records, codec, 1024, &wr).ok());
  EXPECT_GT(wr.blocks, 10u) << "1 KiB blocks must cut this segment often";

  std::unique_ptr<SegmentStream> reader;
  ASSERT_TRUE(OpenSegmentReader(env_.get(), "seg", codec, {}, &reader).ok());
  size_t i = 0;
  while (reader->Valid()) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(reader->key().ToString(), records[i].key);
    EXPECT_EQ(reader->value().ToString(), records[i].value);
    ASSERT_TRUE(reader->Next().ok());
    ++i;
  }
  EXPECT_EQ(i, records.size());
  EXPECT_EQ(reader->stats().blocks, wr.blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, BlockSegmentTest,
    ::testing::Values(CodecType::kNone, CodecType::kSnappyLike,
                      CodecType::kGzip),
    [](const ::testing::TestParamInfo<CodecType>& info) {
      std::string name = CodecTypeName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BlockSegment, ByteFlipSurfacesCorruptionWithContext) {
  auto env = NewMemEnv();
  const Codec* codec = GetCodec(CodecType::kNone);
  const std::vector<KV> records = MakeSortedRecords(2000);
  SegmentWriteResult wr;
  ASSERT_TRUE(
      WriteTestSegment(env.get(), "seg", records, codec, 1024, &wr).ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(env.get(), "seg", &data).ok());
  data[data.size() - 2] ^= 0x40;  // flip a bit inside the last block payload
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("seg", &f).ok());
  ASSERT_TRUE(f->Append(data).ok());
  ASSERT_TRUE(f->Close().ok());

  std::unique_ptr<SegmentStream> reader;
  Status open = OpenSegmentReader(env.get(), "seg", codec, {}, &reader);
  Status st = open;
  if (open.ok()) {
    // Corruption sits in the last block, so it surfaces mid-stream.
    while (reader->Valid()) {
      st = reader->Next();
      if (!st.ok()) break;
    }
  }
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("seg"), std::string::npos) << st.ToString();
  EXPECT_NE(st.ToString().find("block"), std::string::npos) << st.ToString();
  EXPECT_NE(st.ToString().find("crc"), std::string::npos) << st.ToString();
}

TEST(BlockSegment, ReduceTaskFailsCleanlyOnCorruptSegment) {
  auto env = NewMemEnv();
  const Codec* codec = GetCodec(CodecType::kNone);
  const std::vector<KV> records = MakeSortedRecords(2000);
  SegmentWriteResult wr;
  ASSERT_TRUE(
      WriteTestSegment(env.get(), "seg", records, codec, 1024, &wr).ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(env.get(), "seg", &data).ok());
  data[data.size() - 2] ^= 0x40;
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("seg", &f).ok());
  ASSERT_TRUE(f->Append(data).ok());
  ASSERT_TRUE(f->Close().ok());

  JobSpec spec;
  spec.reducer_factory = []() {
    class Echo : public Reducer {
      void Reduce(const Slice& key, ValueIterator* values,
                  ReduceContext* ctx) override {
        Slice v;
        while (values->Next(&v)) ctx->Emit(key, v);
      }
    };
    return std::make_unique<Echo>();
  };
  spec.num_reduce_tasks = 1;
  ReduceTaskInputs inputs;
  inputs.segment_files = {"seg"};
  ReduceTaskResult result;
  Status st = RunReduceTask(spec, 0, inputs, env.get(),
                            /*collect_output=*/true, &result);
  ASSERT_FALSE(st.ok()) << "corrupt segment must fail the reduce task";
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("seg"), std::string::npos) << st.ToString();
}

TEST(BlockSegment, ReaderMemoryBoundedByReadahead) {
  auto env = NewMemEnv();
  const Codec* codec = GetCodec(CodecType::kNone);
  // ~1.2 MiB raw cut into 4 KiB blocks: a monolithic reader would buffer the
  // whole segment; the streaming reader must stay near readahead x block.
  const std::vector<KV> records = MakeSortedRecords(20000, 48);
  const size_t kBlock = 4096;
  SegmentWriteResult wr;
  ASSERT_TRUE(
      WriteTestSegment(env.get(), "seg", records, codec, kBlock, &wr).ok());
  ASSERT_GT(wr.stored_bytes, 64u * kBlock) << "segment must dwarf the window";

  SegmentReadOptions opts;
  opts.readahead_blocks = 2;
  std::unique_ptr<SegmentStream> reader;
  ASSERT_TRUE(OpenSegmentReader(env.get(), "seg", codec, opts, &reader).ok());
  size_t n = 0;
  while (reader->Valid()) {
    ASSERT_TRUE(reader->Next().ok());
    ++n;
  }
  EXPECT_EQ(n, records.size());
  // Window: readahead compressed frames + one decompressed block, plus
  // per-record slack for the final records of a block.
  const uint64_t bound = (opts.readahead_blocks + 2) * 2 * kBlock;
  EXPECT_LE(reader->stats().peak_buffered_bytes, bound);
  EXPECT_LT(reader->stats().peak_buffered_bytes, wr.stored_bytes / 4)
      << "peak buffered bytes must not scale with segment size";
}

// ---------------------------------------------------------------------------
// Pipelined vs barrier job execution
// ---------------------------------------------------------------------------

class EchoMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

class ConcatReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    std::string joined;
    Slice v;
    while (values->Next(&v)) {
      if (!joined.empty()) joined.push_back('|');
      joined.append(v.data(), v.size());
    }
    ctx->Emit(key, joined);
  }
};

JobSpec EchoConcatJob(int reduce_tasks) {
  JobSpec spec;
  spec.name = "pipeline_echo";
  spec.mapper_factory = []() { return std::make_unique<EchoMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<ConcatReducer>(); };
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

TEST(PipelinedShuffle, MatchesBarrierOutput) {
  std::vector<KV> input;
  for (int i = 0; i < 3000; ++i) {
    input.push_back({"k" + std::to_string(i % 131), "v" + std::to_string(i)});
  }
  JobSpec spec = EchoConcatJob(5);
  spec.shuffle_block_bytes = 2048;  // force multi-block segments

  RunOptions barrier;
  barrier.shuffle_mode = ShuffleMode::kBarrier;
  JobResult barrier_result;
  ASSERT_TRUE(
      RunJob(spec, MakeSplits(input, 7), barrier, &barrier_result).ok());

  RunOptions pipelined;
  pipelined.shuffle_mode = ShuffleMode::kPipelined;
  JobResult pipelined_result;
  ASSERT_TRUE(
      RunJob(spec, MakeSplits(input, 7), pipelined, &pipelined_result).ok());

  EXPECT_EQ(Canonicalize(barrier_result.FlatOutput()),
            Canonicalize(pipelined_result.FlatOutput()));
  EXPECT_EQ(barrier_result.metrics.reduce_input_records,
            pipelined_result.metrics.reduce_input_records);
  // Both modes moved the same shuffle volume and decoded real blocks.
  EXPECT_EQ(barrier_result.metrics.shuffle_bytes,
            pipelined_result.metrics.shuffle_bytes);
  EXPECT_GT(pipelined_result.metrics.shuffle_blocks, 0u);
  EXPECT_GT(pipelined_result.metrics.shuffle_peak_buffered_bytes, 0u);
  EXPECT_EQ(barrier_result.metrics.shuffle_overlapped_fetches, 0u);
}

TEST(PipelinedShuffle, FetchesOverlapTheMapWave) {
  // One worker runs the two map tasks back to back; the second mapper is
  // slow, so the fetches of map 0's segments must begin while it is still
  // running and get counted as overlapped.
  class SlowSecondMapper : public Mapper {
   public:
    void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
      if (key.ToString().rfind("slow", 0) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
      ctx->Emit(key, value);
    }
  };
  JobSpec spec = EchoConcatJob(2);
  spec.mapper_factory = []() { return std::make_unique<SlowSecondMapper>(); };

  std::vector<KV> fast;
  for (int i = 0; i < 50; ++i) {
    fast.push_back({"fast" + std::to_string(i), "v"});
  }
  std::vector<InputSplit> splits;
  splits.push_back(MakeSplit(fast));
  splits.push_back(MakeSplit({{"slow0", "v"}}));

  RunOptions options;
  options.num_workers = 1;
  options.fetch_threads = 2;
  options.shuffle_mode = ShuffleMode::kPipelined;
  JobResult result;
  ASSERT_TRUE(RunJob(spec, splits, options, &result).ok());
  EXPECT_GT(result.metrics.shuffle_overlapped_fetches, 0u)
      << "map 0's fetches must start while map 1 is still sleeping";
  EXPECT_EQ(result.metrics.reduce_input_records, 51u);
}

TEST(PipelinedShuffle, PeakBufferedBytesStaysBoundedUnderLargeShuffle) {
  // Large shuffled values with tiny blocks: job-level peak buffered bytes
  // (MAX over reduce tasks of fetched frames queue + decompressed block)
  // must track the block/readahead window, not segment size. Fetched frames
  // are pinned whole per segment, so the bound here is per-task input
  // volume; the decode window on top of it is what we assert stays small.
  std::vector<KV> input;
  for (int i = 0; i < 4000; ++i) {
    input.push_back({"k" + std::to_string(i % 97),
                     std::string(64, 'x') + std::to_string(i)});
  }
  JobSpec spec = EchoConcatJob(4);
  spec.shuffle_block_bytes = 2048;
  RunOptions options;
  options.readahead_blocks = 2;
  JobResult result;
  ASSERT_TRUE(RunJob(spec, MakeSplits(input, 4), options, &result).ok());
  EXPECT_GT(result.metrics.shuffle_peak_buffered_bytes, 0u);
  // A reduce task buffers its fetched compressed frames plus a bounded
  // decode window; it must never approach the whole job's shuffle volume.
  EXPECT_LT(result.metrics.shuffle_peak_buffered_bytes,
            result.metrics.shuffle_bytes);
}

TEST(PipelinedShuffle, ShufflePhaseMetricsArePopulated) {
  std::vector<KV> input;
  for (int i = 0; i < 2000; ++i) {
    input.push_back({"k" + std::to_string(i % 50), "value" + std::to_string(i)});
  }
  JobSpec spec = EchoConcatJob(3);
  spec.shuffle_block_bytes = 1024;
  spec.map_output_codec = CodecType::kSnappyLike;
  JobResult result;
  ASSERT_TRUE(RunJob(spec, MakeSplits(input, 4), RunOptions(), &result).ok());
  EXPECT_GT(result.metrics.shuffle_blocks, 0u);
  EXPECT_GT(result.metrics.shuffle_decode_nanos, 0u);
  EXPECT_GT(result.metrics.shuffle_merge_nanos, 0u);
  EXPECT_GT(result.metrics.shuffle_peak_buffered_bytes, 0u);
}

}  // namespace
}  // namespace antimr
