// Tests of the Shared structure: ordering, grouping, spilling, spill
// merging, and reduce-phase combining.
#include "anticombine/shared.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "alloc_counter.h"
#include "mr/metrics.h"

namespace antimr {
namespace anticombine {
namespace {

class SharedTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  Shared::Options BaseOptions() {
    Shared::Options o;
    o.key_cmp = BytewiseCompare;
    o.grouping_cmp = BytewiseCompare;
    o.env = env_.get();
    o.file_prefix = "t";
    o.metrics = &metrics_;
    return o;
  }

  /// Drain into a map key -> values (in pop order).
  std::map<std::string, std::vector<std::string>> DrainAll(Shared* shared) {
    std::map<std::string, std::vector<std::string>> out;
    std::string last_key;
    bool first = true;
    std::string key;
    std::vector<std::string> values;
    while (shared->PeekMinKey(&key)) {
      values.clear();
      std::string group_key;
      EXPECT_TRUE(shared->PopMinKeyValues(&group_key, &values));
      if (!first) {
        EXPECT_GT(group_key, last_key) << "groups must pop in key order";
      }
      first = false;
      last_key = group_key;
      out[group_key] = values;
    }
    EXPECT_TRUE(shared->Empty());
    return out;
  }

  std::unique_ptr<Env> env_;
  JobMetrics metrics_;
};

TEST_F(SharedTest, EmptyInitially) {
  Shared shared(BaseOptions());
  EXPECT_TRUE(shared.Empty());
  std::string key;
  EXPECT_FALSE(shared.PeekMinKey(&key));
  std::vector<std::string> values;
  EXPECT_FALSE(shared.PopMinKeyValues(&key, &values));
}

TEST_F(SharedTest, SingleRecord) {
  Shared shared(BaseOptions());
  shared.Add("k", "v");
  std::string key;
  ASSERT_TRUE(shared.PeekMinKey(&key));
  EXPECT_EQ(key, "k");
  auto all = DrainAll(&shared);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all["k"], std::vector<std::string>{"v"});
}

TEST_F(SharedTest, PopsInKeyOrder) {
  Shared shared(BaseOptions());
  shared.Add("delta", "4");
  shared.Add("alpha", "1");
  shared.Add("charlie", "3");
  shared.Add("bravo", "2");
  auto all = DrainAll(&shared);  // DrainAll asserts ordering
  EXPECT_EQ(all.size(), 4u);
}

TEST_F(SharedTest, MultipleValuesPerKey) {
  Shared shared(BaseOptions());
  shared.Add("k", "1");
  shared.Add("k", "2");
  shared.Add("k", "3");
  auto all = DrainAll(&shared);
  EXPECT_EQ(all["k"], (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(SharedTest, SpillsWhenOverBudget) {
  Shared::Options options = BaseOptions();
  options.memory_limit_bytes = 256;
  Shared shared(options);
  std::map<std::string, std::vector<std::string>> expected;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i % 37);
    const std::string value = "value_" + std::to_string(i);
    shared.Add(key, value);
    expected[key].push_back(value);
  }
  EXPECT_GT(metrics_.shared_spills, 0u);
  auto all = DrainAll(&shared);
  ASSERT_EQ(all.size(), expected.size());
  for (auto& [key, values] : expected) {
    // Pop order across memory + spills must be stable per key; compare as
    // multisets since spill boundaries interleave.
    std::vector<std::string> got = all[key];
    std::sort(got.begin(), got.end());
    std::sort(values.begin(), values.end());
    EXPECT_EQ(got, values) << key;
  }
}

TEST_F(SharedTest, SpillMergeKeepsData) {
  Shared::Options options = BaseOptions();
  options.memory_limit_bytes = 128;
  options.spill_merge_threshold = 3;
  Shared shared(options);
  size_t total = 0;
  for (int i = 0; i < 400; ++i) {
    shared.Add("k" + std::to_string(i % 50), std::string(20, 'x'));
    ++total;
  }
  EXPECT_GT(metrics_.shared_spill_merges, 0u);
  auto all = DrainAll(&shared);
  size_t drained = 0;
  for (const auto& [key, values] : all) drained += values.size();
  EXPECT_EQ(drained, total);
}

TEST_F(SharedTest, InterleavedAddAndPop) {
  Shared shared(BaseOptions());
  shared.Add("b", "b1");
  shared.Add("d", "d1");
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(key, "b");
  // Add keys after popping; they must surface in order.
  shared.Add("c", "c1");
  shared.Add("e", "e1");
  values.clear();
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(key, "c");
  values.clear();
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(key, "d");
  values.clear();
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(key, "e");
  EXPECT_TRUE(shared.Empty());
}

TEST_F(SharedTest, ReAddingPoppedKeyWorks) {
  Shared shared(BaseOptions());
  shared.Add("k", "1");
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  shared.Add("k", "2");
  values.clear();
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(values, std::vector<std::string>{"2"});
}

TEST_F(SharedTest, GroupingComparatorMergesKeys) {
  Shared::Options options = BaseOptions();
  // Group on the first character only.
  options.grouping_cmp = [](const Slice& a, const Slice& b) {
    const char ca = a.empty() ? 0 : a[0];
    const char cb = b.empty() ? 0 : b[0];
    return (ca < cb) ? -1 : (ca > cb ? 1 : 0);
  };
  Shared shared(options);
  shared.Add("a2", "second");
  shared.Add("a1", "first");
  shared.Add("b1", "other");
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(key, "a1");
  // Values of a1 and a2, in key order.
  EXPECT_EQ(values, (std::vector<std::string>{"first", "second"}));
  values.clear();
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(key, "b1");
}

TEST_F(SharedTest, GroupSpansMemoryAndSpills) {
  Shared::Options options = BaseOptions();
  options.memory_limit_bytes = 64;
  Shared shared(options);
  // First adds spill; later adds for the same key stay in memory.
  shared.Add("k", std::string(100, 'a'));  // spills immediately
  shared.Add("k", "b");
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE(shared.PopMinKeyValues(&key, &values));
  EXPECT_EQ(key, "k");
  ASSERT_EQ(values.size(), 2u);
}

// A summing combiner over decimal-string values.
class SumCombiner : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    long total = 0;
    Slice v;
    while (values->Next(&v)) total += std::stol(v.ToString());
    ctx->Emit(key, std::to_string(total));
  }
};

TEST_F(SharedTest, CombinerCollapsesValues) {
  SumCombiner combiner;
  Shared::Options options = BaseOptions();
  options.combiner = &combiner;
  Shared shared(options);
  for (int i = 0; i < 100; ++i) shared.Add("k", "1");
  // Reduce-phase combining keeps one value per key.
  EXPECT_LT(shared.memory_usage(), 64u);
  auto all = DrainAll(&shared);
  EXPECT_EQ(all["k"], std::vector<std::string>{"100"});
  EXPECT_GT(metrics_.combine_input_records, 0u);
}

TEST_F(SharedTest, CombinerPreventsSpills) {
  SumCombiner combiner;
  Shared::Options options = BaseOptions();
  options.combiner = &combiner;
  options.memory_limit_bytes = 2048;
  Shared shared(options);
  // 20 keys x 1000 values: without combining this would spill many times.
  for (int i = 0; i < 20000; ++i) {
    shared.Add("key" + std::to_string(i % 20), "1");
  }
  EXPECT_EQ(metrics_.shared_spills, 0u);
  auto all = DrainAll(&shared);
  EXPECT_EQ(all.size(), 20u);
  for (const auto& [key, values] : all) {
    EXPECT_EQ(values, std::vector<std::string>{"1000"});
  }
}

TEST_F(SharedTest, SpillFilesRemovedOnDestruction) {
  Shared::Options options = BaseOptions();
  options.memory_limit_bytes = 64;
  {
    Shared shared(options);
    for (int i = 0; i < 50; ++i) {
      shared.Add("k" + std::to_string(i), std::string(40, 'z'));
    }
    EXPECT_GT(metrics_.shared_spills, 0u);
  }
  std::vector<std::string> files;
  ASSERT_TRUE(env_->ListFiles(&files).ok());
  EXPECT_TRUE(files.empty());
}

TEST_F(SharedTest, BinarySafeKeysAndValues) {
  Shared shared(BaseOptions());
  const std::string key("\x00\x01", 2);
  const std::string value("\xff\x00\xfe", 3);
  shared.Add(key, value);
  std::string popped;
  std::vector<std::string> values;
  ASSERT_TRUE(shared.PopMinKeyValues(&popped, &values));
  EXPECT_EQ(popped, key);
  EXPECT_EQ(values, std::vector<std::string>{value});
}

TEST_F(SharedTest, PeekMinKeySliceOverloadViewsInternedKey) {
  Shared shared(BaseOptions());
  shared.Add(Slice("banana"), Slice("v1"));
  shared.Add(Slice("apple"), Slice("v2"));
  Slice min;
  ASSERT_TRUE(shared.PeekMinKey(&min));
  EXPECT_EQ(min.ToString(), "apple");
  // Peek again: same interned bytes, not a fresh copy.
  Slice again;
  ASSERT_TRUE(shared.PeekMinKey(&again));
  EXPECT_EQ(again.data(), min.data());
  // The string overload agrees.
  std::string min_str;
  ASSERT_TRUE(shared.PeekMinKey(&min_str));
  EXPECT_EQ(min_str, "apple");
}

// Allocation-count regression guard for the interned-key redesign. The old
// implementation allocated a std::string per Add just to probe the table
// (table_.find(std::string(key.view()))) and re-copied heap_.top() at every
// spill/pop touch. With keys interned once, adding values to an existing key
// must cost ~one allocation (the owned value) — not two-plus. Keys/values
// are 32 chars, comfortably beyond small-string optimization, so any key
// copy would show up in the counter.
TEST_F(SharedTest, AddToExistingKeyDoesNotCopyKey) {
  Shared shared(BaseOptions());
  const std::string key(32, 'k');
  const std::string value(32, 'v');
  // Warm up: intern the key, size the containers.
  for (int i = 0; i < 8; ++i) shared.Add(key, value);

  const uint64_t before = test_alloc::AllocationCount();
  constexpr int kAdds = 1000;
  for (int i = 0; i < kAdds; ++i) shared.Add(key, value);
  const uint64_t allocs = test_alloc::AllocationCount() - before;

  // One allocation per owned value plus amortized vector growth. The old
  // per-Add key-probe copy alone would push this past 2 * kAdds.
  EXPECT_LE(allocs, kAdds + kAdds / 2)
      << "per-Add key copies have crept back into Shared::AddInternal";
}

}  // namespace
}  // namespace anticombine
}  // namespace antimr
