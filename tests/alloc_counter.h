// Global operator new/delete replacement that counts heap allocations, for
// allocation-regression tests. Include from EXACTLY ONE translation unit of
// a test binary (the replacement functions are definitions, not
// declarations); never include from library code.
#ifndef ANTIMR_TESTS_ALLOC_COUNTER_H_
#define ANTIMR_TESTS_ALLOC_COUNTER_H_

#include <atomic>
#include <cstdlib>
#include <new>

namespace test_alloc {

inline std::atomic<uint64_t>& Counter() {
  static std::atomic<uint64_t> count{0};
  return count;
}

/// Total operator-new calls in this binary so far. Diff around the code
/// under test; gtest/test-fixture noise between the two reads is on the
/// test to keep out of the window.
inline uint64_t AllocationCount() {
  return Counter().load(std::memory_order_relaxed);
}

}  // namespace test_alloc

void* operator new(std::size_t size) {
  test_alloc::Counter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  test_alloc::Counter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // ANTIMR_TESTS_ALLOC_COUNTER_H_
