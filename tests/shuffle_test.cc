#include "mr/shuffle.h"

#include <gtest/gtest.h>

#include "mr/reduce_task.h"

namespace antimr {
namespace {

class ShuffleTest : public ::testing::TestWithParam<CodecType> {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }
  std::unique_ptr<Env> env_;
};

TEST_P(ShuffleTest, SegmentRoundTrip) {
  const Codec* codec = GetCodec(GetParam());
  std::vector<KV> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back({"key" + std::to_string(i),
                       "value value value " + std::to_string(i)});
  }
  KVVectorStream in(&records);
  uint64_t compress_nanos = 0;
  SegmentWriteResult write_result;
  ASSERT_TRUE(WriteSegment(env_.get(), "seg", &in, codec, &compress_nanos,
                           &write_result)
                  .ok());
  EXPECT_EQ(write_result.records, 500u);
  EXPECT_GT(write_result.raw_bytes, 0u);
  EXPECT_GT(write_result.blocks, 0u);

  std::unique_ptr<SegmentStream> out;
  ASSERT_TRUE(OpenSegmentReader(env_.get(), "seg", codec, {}, &out).ok());
  size_t i = 0;
  while (out->Valid()) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(out->key().ToString(), records[i].key);
    EXPECT_EQ(out->value().ToString(), records[i].value);
    ASSERT_TRUE(out->Next().ok());
    ++i;
  }
  EXPECT_EQ(i, records.size());
  // Fully consumed: the reader has seen every stored byte and block.
  EXPECT_EQ(out->stats().bytes_read, write_result.stored_bytes);
  EXPECT_EQ(out->stats().blocks, write_result.blocks);
  EXPECT_EQ(out->stats().records, write_result.records);
}

TEST_P(ShuffleTest, FetchedSegmentRoundTrip) {
  const Codec* codec = GetCodec(GetParam());
  std::vector<KV> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back({"k" + std::to_string(i), "v" + std::to_string(i)});
  }
  KVVectorStream in(&records);
  uint64_t nanos = 0;
  SegmentWriteResult write_result;
  ASSERT_TRUE(
      WriteSegment(env_.get(), "seg", &in, codec, &nanos, &write_result).ok());

  FetchedSegment fetched;
  ASSERT_TRUE(FetchSegmentFrames(env_.get(), "seg", 0, &fetched).ok());
  EXPECT_EQ(fetched.fetched_bytes, write_result.stored_bytes);
  EXPECT_EQ(fetched.file, "seg");

  std::unique_ptr<SegmentStream> out;
  ASSERT_TRUE(
      OpenFetchedSegment(fetched, codec, kShuffleReadaheadBlocks, &out).ok());
  size_t i = 0;
  while (out->Valid()) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(out->key().ToString(), records[i].key);
    EXPECT_EQ(out->value().ToString(), records[i].value);
    ASSERT_TRUE(out->Next().ok());
    ++i;
  }
  EXPECT_EQ(i, records.size());
}

TEST_P(ShuffleTest, EmptySegment) {
  const Codec* codec = GetCodec(GetParam());
  std::vector<KV> records;
  KVVectorStream in(&records);
  uint64_t nanos = 0;
  SegmentWriteResult result;
  ASSERT_TRUE(
      WriteSegment(env_.get(), "empty", &in, codec, &nanos, &result).ok());
  EXPECT_EQ(result.records, 0u);
  std::unique_ptr<SegmentStream> out;
  ASSERT_TRUE(OpenSegmentReader(env_.get(), "empty", codec, {}, &out).ok());
  EXPECT_FALSE(out->Valid());
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, ShuffleTest,
    ::testing::Values(CodecType::kNone, CodecType::kSnappyLike,
                      CodecType::kGzip, CodecType::kBzip2Like),
    [](const ::testing::TestParamInfo<CodecType>& info) {
      std::string name = CodecTypeName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ShuffleNames, AreUniquePerTaskPartitionAndSpill) {
  EXPECT_NE(SegmentFileName("j", 1, 2), SegmentFileName("j", 2, 1));
  EXPECT_NE(SegmentFileName("j1", 1, 2), SegmentFileName("j2", 1, 2));
  EXPECT_NE(SpillFileName("j", 1, 0, 2), SpillFileName("j", 1, 1, 2));
  EXPECT_NE(SpillFileName("j", 1, 0, 2), SegmentFileName("j", 1, 2));
}

TEST(ShuffleCompression, MissingSegmentIsError) {
  auto env = NewMemEnv();
  std::unique_ptr<SegmentStream> out;
  EXPECT_FALSE(
      OpenSegmentReader(env.get(), "nope", GetCodec(CodecType::kNone), {}, &out)
          .ok());
}

TEST(ShuffleCompression, CorruptSegmentIsError) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("bad", &f).ok());
  ASSERT_TRUE(f->Append("this is not gzip").ok());
  ASSERT_TRUE(f->Close().ok());
  std::unique_ptr<SegmentStream> out;
  Status st =
      OpenSegmentReader(env.get(), "bad", GetCodec(CodecType::kGzip), {}, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

}  // namespace
}  // namespace antimr
