#include "mr/shuffle.h"

#include <gtest/gtest.h>

#include "mr/reduce_task.h"

namespace antimr {
namespace {

class ShuffleTest : public ::testing::TestWithParam<CodecType> {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }
  std::unique_ptr<Env> env_;
};

TEST_P(ShuffleTest, SegmentRoundTrip) {
  const Codec* codec = GetCodec(GetParam());
  std::vector<KV> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back({"key" + std::to_string(i),
                       "value value value " + std::to_string(i)});
  }
  KVVectorStream in(&records);
  uint64_t compress_nanos = 0;
  SegmentWriteResult write_result;
  ASSERT_TRUE(WriteSegment(env_.get(), "seg", &in, codec, &compress_nanos,
                           &write_result)
                  .ok());
  EXPECT_EQ(write_result.records, 500u);
  EXPECT_GT(write_result.raw_bytes, 0u);

  uint64_t decompress_nanos = 0;
  uint64_t fetched = 0;
  std::unique_ptr<KVStream> out;
  ASSERT_TRUE(FetchSegment(env_.get(), "seg", codec, &decompress_nanos,
                           &fetched, &out)
                  .ok());
  EXPECT_EQ(fetched, write_result.stored_bytes);
  size_t i = 0;
  while (out->Valid()) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(out->key().ToString(), records[i].key);
    EXPECT_EQ(out->value().ToString(), records[i].value);
    ASSERT_TRUE(out->Next().ok());
    ++i;
  }
  EXPECT_EQ(i, records.size());
}

TEST_P(ShuffleTest, EmptySegment) {
  const Codec* codec = GetCodec(GetParam());
  std::vector<KV> records;
  KVVectorStream in(&records);
  uint64_t nanos = 0;
  SegmentWriteResult result;
  ASSERT_TRUE(
      WriteSegment(env_.get(), "empty", &in, codec, &nanos, &result).ok());
  EXPECT_EQ(result.records, 0u);
  std::unique_ptr<KVStream> out;
  uint64_t fetched = 0;
  ASSERT_TRUE(
      FetchSegment(env_.get(), "empty", codec, &nanos, &fetched, &out).ok());
  EXPECT_FALSE(out->Valid());
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, ShuffleTest,
    ::testing::Values(CodecType::kNone, CodecType::kSnappyLike,
                      CodecType::kGzip, CodecType::kBzip2Like),
    [](const ::testing::TestParamInfo<CodecType>& info) {
      std::string name = CodecTypeName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ShuffleNames, AreUniquePerTaskPartitionAndSpill) {
  EXPECT_NE(SegmentFileName("j", 1, 2), SegmentFileName("j", 2, 1));
  EXPECT_NE(SegmentFileName("j1", 1, 2), SegmentFileName("j2", 1, 2));
  EXPECT_NE(SpillFileName("j", 1, 0, 2), SpillFileName("j", 1, 1, 2));
  EXPECT_NE(SpillFileName("j", 1, 0, 2), SegmentFileName("j", 1, 2));
}

TEST(ShuffleCompression, MissingSegmentIsError) {
  auto env = NewMemEnv();
  std::unique_ptr<KVStream> out;
  uint64_t nanos = 0, fetched = 0;
  EXPECT_FALSE(FetchSegment(env.get(), "nope", GetCodec(CodecType::kNone),
                            &nanos, &fetched, &out)
                   .ok());
}

TEST(ShuffleCompression, CorruptSegmentIsError) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("bad", &f).ok());
  ASSERT_TRUE(f->Append("this is not gzip").ok());
  ASSERT_TRUE(f->Close().ok());
  std::unique_ptr<KVStream> out;
  uint64_t nanos = 0, fetched = 0;
  EXPECT_FALSE(FetchSegment(env.get(), "bad", GetCodec(CodecType::kGzip),
                            &nanos, &fetched, &out)
                   .ok());
}

}  // namespace
}  // namespace antimr
