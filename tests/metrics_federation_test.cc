// Metrics federation edge cases: the snapshot wire format round-trips, the
// coordinator-side fold is idempotent under retransmits and reorder, dead
// workers keep their final counters but lose their gauges, reconnecting
// workers (fresh registry uid) stay monotonic, and in-process workers that
// share one registry (same uid) are counted once, not N times.
#include <string>

#include <gtest/gtest.h>

#include "obs/federation.h"
#include "obs/metrics_registry.h"

namespace antimr {
namespace obs {
namespace {

MetricsSnapshot MakeSnapshot(uint64_t uid, uint64_t tasks, int64_t queue) {
  MetricsSnapshot snap;
  snap.registry_uid = uid;
  snap.counters["antimr_tasks_total"] = tasks;
  snap.gauges["antimr_queue_depth"] = queue;
  SnapshotHistogram h;
  h.count = tasks;
  h.sum = tasks * 100;
  h.buckets[3] = tasks;
  snap.histograms["antimr_task_nanos"] = h;
  return snap;
}

uint64_t TotalCounter(const ClusterMetrics& cluster, const std::string& name) {
  const MetricsSnapshot totals = cluster.ClusterTotals(nullptr, 0);
  auto it = totals.counters.find(name);
  return it == totals.counters.end() ? 0 : it->second;
}

int64_t TotalGauge(const ClusterMetrics& cluster, const std::string& name) {
  const MetricsSnapshot totals = cluster.ClusterTotals(nullptr, 0);
  auto it = totals.gauges.find(name);
  return it == totals.gauges.end() ? 0 : it->second;
}

TEST(MetricsSnapshotWire, RoundTripsAllMetricKinds) {
  MetricsSnapshot snap = MakeSnapshot(0x1234abcd, 42, -7);
  snap.gauges["antimr_negative"] = -123456789;
  snap.histograms["antimr_empty"] = SnapshotHistogram();

  std::string wire;
  EncodeMetricsSnapshot(snap, &wire);
  MetricsSnapshot decoded;
  ASSERT_TRUE(DecodeMetricsSnapshot(wire, &decoded).ok());

  EXPECT_EQ(decoded.registry_uid, snap.registry_uid);
  EXPECT_EQ(decoded.counters, snap.counters);
  EXPECT_EQ(decoded.gauges, snap.gauges);
  ASSERT_EQ(decoded.histograms.size(), snap.histograms.size());
  const SnapshotHistogram& h = decoded.histograms.at("antimr_task_nanos");
  EXPECT_EQ(h.count, 42u);
  EXPECT_EQ(h.sum, 4200u);
  EXPECT_EQ(h.buckets, snap.histograms.at("antimr_task_nanos").buckets);
}

TEST(MetricsSnapshotWire, RejectsTruncatedAndTrailingBytes) {
  std::string wire;
  EncodeMetricsSnapshot(MakeSnapshot(7, 5, 1), &wire);
  MetricsSnapshot decoded;
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    // Any truncation must fail cleanly, never crash or accept silently (the
    // section counts make every strict prefix incomplete).
    EXPECT_FALSE(DecodeMetricsSnapshot(wire.substr(0, cut), &decoded).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(DecodeMetricsSnapshot(wire + "x", &decoded).ok());
}

TEST(MetricsSnapshotWire, SnapshotRegistryCapturesLiveState) {
  MetricsRegistry reg;
  reg.GetCounter("antimr_c", "")->Inc(11);
  reg.GetGauge("antimr_g", "")->Set(-3);
  reg.GetHistogram("antimr_h", "")->Observe(1000);
  MetricsSnapshot snap;
  SnapshotRegistry(reg, 99, &snap);
  EXPECT_EQ(snap.registry_uid, 99u);
  EXPECT_EQ(snap.counters.at("antimr_c"), 11u);
  EXPECT_EQ(snap.gauges.at("antimr_g"), -3);
  EXPECT_EQ(snap.histograms.at("antimr_h").count, 1u);
  EXPECT_EQ(snap.histograms.at("antimr_h").sum, 1000u);
}

TEST(ClusterMetricsTest, RetransmitIsIdempotent) {
  ClusterMetrics cluster;
  const MetricsSnapshot snap = MakeSnapshot(100, 10, 2);
  cluster.Fold(1, snap);
  cluster.Fold(1, snap);  // duplicate heartbeat (retransmit)
  cluster.Fold(1, snap);
  EXPECT_EQ(TotalCounter(cluster, "antimr_tasks_total"), 10u);
  EXPECT_EQ(TotalGauge(cluster, "antimr_queue_depth"), 2);
}

TEST(ClusterMetricsTest, StaleBeatNeverMovesCountersBackwards) {
  ClusterMetrics cluster;
  cluster.Fold(1, MakeSnapshot(100, 50, 4));
  cluster.Fold(1, MakeSnapshot(100, 30, 9));  // reordered older beat
  EXPECT_EQ(TotalCounter(cluster, "antimr_tasks_total"), 50u);
  // Gauges are point-in-time: the latest arrival wins regardless.
  EXPECT_EQ(TotalGauge(cluster, "antimr_queue_depth"), 9);
}

TEST(ClusterMetricsTest, DistinctIncarnationsSumSharedIncarnationCollapses) {
  ClusterMetrics sharing;  // in-process cluster: one registry, one uid
  sharing.Fold(1, MakeSnapshot(100, 40, 1));
  sharing.Fold(2, MakeSnapshot(100, 40, 1));
  sharing.Fold(3, MakeSnapshot(100, 40, 1));
  EXPECT_EQ(TotalCounter(sharing, "antimr_tasks_total"), 40u);
  EXPECT_EQ(sharing.worker_count(), 3u);

  ClusterMetrics separate;  // real processes: independent uids
  separate.Fold(1, MakeSnapshot(100, 40, 1));
  separate.Fold(2, MakeSnapshot(200, 40, 1));
  EXPECT_EQ(TotalCounter(separate, "antimr_tasks_total"), 80u);
}

TEST(ClusterMetricsTest, DeadWorkerKeepsCountersZeroesGauges) {
  ClusterMetrics cluster;
  cluster.Fold(1, MakeSnapshot(100, 25, 6));
  cluster.MarkWorkerDead(1);
  // Work already done stays in the totals; a dead process holds no queue.
  EXPECT_EQ(TotalCounter(cluster, "antimr_tasks_total"), 25u);
  EXPECT_EQ(TotalGauge(cluster, "antimr_queue_depth"), 0);
  EXPECT_EQ(cluster.worker_count(), 1u);  // retention: never forgotten
  // A late beat from the dead worker must not resurrect its gauges.
  cluster.Fold(1, MakeSnapshot(100, 25, 6));
  cluster.MarkWorkerDead(1);
  EXPECT_EQ(TotalGauge(cluster, "antimr_queue_depth"), 0);
}

TEST(ClusterMetricsTest, SharedIncarnationGaugesSurviveOneDeath) {
  // Two workers report the same incarnation (in-process cluster); one dying
  // must not zero the gauges the survivor still backs.
  ClusterMetrics cluster;
  cluster.Fold(1, MakeSnapshot(100, 25, 6));
  cluster.Fold(2, MakeSnapshot(100, 25, 6));
  cluster.MarkWorkerDead(1);
  EXPECT_EQ(TotalGauge(cluster, "antimr_queue_depth"), 6);
  cluster.MarkWorkerDead(2);
  EXPECT_EQ(TotalGauge(cluster, "antimr_queue_depth"), 0);
}

TEST(ClusterMetricsTest, ReconnectWithFreshUidStaysMonotonic) {
  ClusterMetrics cluster;
  cluster.Fold(1, MakeSnapshot(100, 30, 2));
  cluster.MarkWorkerDead(1);
  const uint64_t after_death = TotalCounter(cluster, "antimr_tasks_total");
  EXPECT_EQ(after_death, 30u);
  // The restarted process reports under a new uid: its counters sum on top
  // of the dead incarnation's retained snapshot.
  cluster.Fold(1, MakeSnapshot(200, 5, 1));
  EXPECT_EQ(TotalCounter(cluster, "antimr_tasks_total"), 35u);
  EXPECT_GE(TotalCounter(cluster, "antimr_tasks_total"), after_death);
}

TEST(ClusterMetricsTest, LocalRegistryMergesWithoutDoubleCount) {
  MetricsRegistry local;
  local.GetCounter("antimr_tasks_total", "")->Inc(7);
  ClusterMetrics cluster;
  cluster.Fold(1, MakeSnapshot(100, 10, 0));
  // Worker snapshot for the coordinator's own uid (loopback: the worker
  // shares the coordinator's registry) must not add to the live local read.
  cluster.Fold(2, MakeSnapshot(555, 7, 0));
  const MetricsSnapshot totals = cluster.ClusterTotals(&local, 555);
  EXPECT_EQ(totals.counters.at("antimr_tasks_total"), 17u);
}

TEST(ClusterMetricsTest, PrometheusTextHasTotalsAndWorkerSeries) {
  ClusterMetrics cluster;
  cluster.Fold(1, MakeSnapshot(100, 12, 3));
  cluster.Fold(2, MakeSnapshot(200, 8, 1));
  const std::string text = cluster.ToPrometheusText(nullptr, 0);
  EXPECT_NE(text.find("# TYPE antimr_tasks_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_tasks_total 20"), std::string::npos);
  EXPECT_NE(text.find("antimr_tasks_total{worker=\"1\"} 12"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_tasks_total{worker=\"2\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_queue_depth{worker=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_task_nanos_count 20"), std::string::npos);
}

TEST(MetricsRegistryTest, VisitEntriesSeesEveryKind) {
  MetricsRegistry reg;
  reg.GetCounter("antimr_a", "")->Inc(1);
  reg.GetGauge("antimr_b", "")->Set(2);
  reg.GetHistogram("antimr_c", "")->Observe(3);
  int counters = 0, gauges = 0, histograms = 0;
  reg.VisitEntries([&](const std::string& name, const Counter* counter,
                       const Gauge* gauge, const Histogram* histogram) {
    counters += counter != nullptr && name == "antimr_a" ? 1 : 0;
    gauges += gauge != nullptr && name == "antimr_b" ? 1 : 0;
    histograms += histogram != nullptr && name == "antimr_c" ? 1 : 0;
  });
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(gauges, 1);
  EXPECT_EQ(histograms, 1);
}

TEST(FederationIds, ProcessUidStableAndFlowIdsUnique) {
  EXPECT_NE(ProcessUid(), 0u);
  EXPECT_EQ(ProcessUid(), ProcessUid());
  const uint64_t a = NextFlowId();
  const uint64_t b = NextFlowId();
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 32, b >> 32);  // same process prefix
}

}  // namespace
}  // namespace obs
}  // namespace antimr
