#include "common/arena.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Arena, InternCopiesBytes) {
  Arena arena;
  std::string src = "hello arena";
  Slice s = arena.Intern(src);
  EXPECT_EQ(s.ToString(), src);
  EXPECT_NE(s.data(), src.data());  // the view aliases arena storage
  // Mutating the source must not affect the interned bytes.
  src[0] = 'X';
  EXPECT_EQ(s.ToString(), "hello arena");
}

TEST(Arena, InternEmptyIsEmpty) {
  Arena arena;
  Slice s = arena.Intern(Slice());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Arena, InternRecordIsContiguous) {
  Arena arena;
  RecordRef rec = arena.InternRecord(Slice("key"), Slice("value"));
  EXPECT_EQ(rec.key.ToString(), "key");
  EXPECT_EQ(rec.value.ToString(), "value");
  EXPECT_EQ(rec.value.data(), rec.key.data() + rec.key.size());
  EXPECT_EQ(rec.bytes(), 8u);
}

TEST(Arena, AddressesStableAcrossGrowth) {
  // Chunked storage must never relocate previously interned bytes, no
  // matter how much is added afterwards (the Shared table and the map
  // output buffer both hold views across arbitrary later interning).
  Arena arena(/*chunk_bytes=*/128);
  std::vector<Slice> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 1000; ++i) {
    expected.push_back("record-" + std::to_string(i));
    views.push_back(arena.Intern(expected.back()));
  }
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].ToString(), expected[i]);
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(/*chunk_bytes=*/64);
  std::string big(1000, 'x');
  Slice s = arena.Intern(big);
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(s.ToString(), big);
  // Small interning continues to work after the oversized request.
  EXPECT_EQ(arena.Intern(Slice("tail")).ToString(), "tail");
}

TEST(Arena, ClearRetainsCapacity) {
  Arena arena(/*chunk_bytes=*/256);
  for (int i = 0; i < 100; ++i) arena.Intern(Slice("some payload bytes"));
  const size_t footprint = arena.bytes_allocated();
  EXPECT_GT(footprint, 0u);
  arena.Clear();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_allocated(), footprint);
  // A second generation of the same size must not grow the footprint.
  for (int i = 0; i < 100; ++i) arena.Intern(Slice("some payload bytes"));
  EXPECT_EQ(arena.bytes_allocated(), footprint);
}

TEST(Arena, ClearReusesChunkStorage) {
  Arena arena(/*chunk_bytes=*/128);
  Slice first = arena.Intern(Slice("generation-one"));
  const char* addr = first.data();
  arena.Clear();
  Slice second = arena.Intern(Slice("generation-two"));
  // Same chunk, same offset: Clear rewinds rather than reallocating.
  EXPECT_EQ(second.data(), addr);
  EXPECT_EQ(second.ToString(), "generation-two");
}

TEST(Arena, ResetReleasesFootprint) {
  Arena arena(/*chunk_bytes=*/128);
  for (int i = 0; i < 50; ++i) arena.Intern(Slice("bytes"));
  EXPECT_GT(arena.bytes_allocated(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.Intern(Slice("after-reset")).ToString(), "after-reset");
}

TEST(Arena, BytesUsedTracksPayload) {
  Arena arena;
  arena.Intern(Slice("1234"));
  arena.InternRecord(Slice("ab"), Slice("cdef"));
  EXPECT_EQ(arena.bytes_used(), 10u);
}

TEST(Arena, ZeroSizeAllocateIsSafe) {
  Arena arena;
  char* p = arena.Allocate(0);
  EXPECT_NE(p, nullptr);
  RecordRef rec = arena.InternRecord(Slice(), Slice());
  EXPECT_TRUE(rec.key.empty());
  EXPECT_TRUE(rec.value.empty());
}

TEST(Arena, RetainedChunkTooSmallIsSkipped) {
  // Generation 1 creates a default chunk, then an oversized one. After
  // Clear, a request bigger than the first retained chunk must skip it and
  // land in the big chunk without corrupting anything.
  Arena arena(/*chunk_bytes=*/64);
  arena.Intern(Slice("small"));
  std::string big(500, 'b');
  arena.Intern(big);
  arena.Clear();
  std::string medium(100, 'm');
  Slice s = arena.Intern(medium);
  EXPECT_EQ(s.ToString(), medium);
  EXPECT_EQ(arena.Intern(Slice("more")).ToString(), "more");
}

}  // namespace
}  // namespace antimr
