#include "workloads/wordcount.h"

#include <map>

#include <gtest/gtest.h>

#include "datagen/random_text.h"
#include "test_util.h"

namespace antimr {
namespace {

using testing::MustRun;
using workloads::MakeWordCountJob;
using workloads::WordCountConfig;

std::map<std::string, std::string> RunToMap(const WordCountConfig& cfg,
                                            const std::vector<KV>& input) {
  auto out = MustRun(MakeWordCountJob(cfg), MakeSplits(input, 2));
  std::map<std::string, std::string> result;
  for (const KV& kv : out) result[kv.key] = kv.value;
  return result;
}

TEST(WordCount, CountsWords) {
  WordCountConfig cfg;
  cfg.num_reduce_tasks = 2;
  auto result = RunToMap(cfg, {{"l1", "the cat and the dog"},
                               {"l2", "the bird"}});
  EXPECT_EQ(result.at("the"), "3");
  EXPECT_EQ(result.at("cat"), "1");
  EXPECT_EQ(result.at("bird"), "1");
  EXPECT_EQ(result.size(), 5u);
}

TEST(WordCount, HandlesRepeatedAndEmptyTokens) {
  WordCountConfig cfg;
  cfg.num_reduce_tasks = 1;
  auto result = RunToMap(cfg, {{"l1", "  a  a   a "}, {"l2", ""}});
  EXPECT_EQ(result.at("a"), "3");
  EXPECT_EQ(result.size(), 1u);
}

TEST(WordCount, CombinerDoesNotChangeCounts) {
  RandomTextConfig rc;
  rc.num_lines = 300;
  rc.vocabulary_words = 40;
  auto input = RandomTextGenerator(rc).Generate();
  WordCountConfig with, without;
  with.with_combiner = true;
  without.with_combiner = false;
  EXPECT_EQ(RunToMap(with, input), RunToMap(without, input));
}

TEST(WordCount, CombinerShrinksShuffleMassively) {
  RandomTextConfig rc;
  rc.num_lines = 2000;
  rc.vocabulary_words = 100;
  RandomTextGenerator gen(rc);
  WordCountConfig cfg;
  cfg.with_combiner = true;
  JobMetrics m;
  MustRun(MakeWordCountJob(cfg), gen.MakeSplits(4), &m);
  // The paper's combiner turns 360 GB into 92 MB; ours must show the same
  // orders-of-magnitude collapse.
  EXPECT_LT(m.shuffle_bytes * 20, m.map_output_bytes);
}

}  // namespace
}  // namespace antimr
