#include "workloads/query_suggestion.h"

#include <map>

#include <gtest/gtest.h>

#include "test_util.h"

namespace antimr {
namespace {

using testing::Canonicalize;
using testing::MustRun;
using workloads::MakeQuerySuggestionJob;
using workloads::QuerySuggestionConfig;

std::vector<KV> QueryInput(const std::vector<std::string>& queries) {
  std::vector<KV> input;
  for (size_t i = 0; i < queries.size(); ++i) {
    input.push_back({"u" + std::to_string(i), queries[i]});
  }
  return input;
}

std::map<std::string, std::string> RunToMap(const QuerySuggestionConfig& cfg,
                                            const std::vector<KV>& input,
                                            int splits = 2) {
  auto out = MustRun(MakeQuerySuggestionJob(cfg), MakeSplits(input, splits));
  std::map<std::string, std::string> result;
  for (const KV& kv : out) result[kv.key] = kv.value;
  return result;
}

TEST(QuerySuggestion, EmitsAllPrefixes) {
  QuerySuggestionConfig cfg;
  cfg.num_reduce_tasks = 2;
  auto result = RunToMap(cfg, QueryInput({"mango"}));
  // Every prefix of "mango" becomes a key (the paper's Figure 2).
  EXPECT_EQ(result.size(), 5u);
  EXPECT_EQ(result.at("m"), "mango");
  EXPECT_EQ(result.at("man"), "mango");
  EXPECT_EQ(result.at("mango"), "mango");
}

TEST(QuerySuggestion, RanksByFrequency) {
  QuerySuggestionConfig cfg;
  cfg.top_k = 2;
  cfg.num_reduce_tasks = 2;
  std::vector<std::string> queries;
  for (int i = 0; i < 5; ++i) queries.push_back("mango");
  for (int i = 0; i < 3; ++i) queries.push_back("manga");
  queries.push_back("map");
  auto result = RunToMap(cfg, QueryInput(queries));
  EXPECT_EQ(result.at("m"), "mango,manga");
  EXPECT_EQ(result.at("man"), "mango,manga");
  EXPECT_EQ(result.at("map"), "map");
}

TEST(QuerySuggestion, TopKLimitsOutput) {
  QuerySuggestionConfig cfg;
  cfg.top_k = 1;
  cfg.num_reduce_tasks = 1;
  auto result = RunToMap(cfg, QueryInput({"aa", "aa", "ab"}));
  EXPECT_EQ(result.at("a"), "aa");
}

TEST(QuerySuggestion, CombinerPreservesResults) {
  std::vector<std::string> queries;
  for (int i = 0; i < 50; ++i) {
    queries.push_back("query" + std::to_string(i % 7));
  }
  QuerySuggestionConfig plain;
  plain.num_reduce_tasks = 3;
  QuerySuggestionConfig combined = plain;
  combined.with_combiner = true;
  const auto input = QueryInput(queries);
  EXPECT_EQ(RunToMap(plain, input), RunToMap(combined, input));
}

TEST(QuerySuggestion, PartitionersPreserveResults) {
  std::vector<std::string> queries = {"sigmod", "sigmod 2014", "sigir",
                                      "sigcomm", "vldb", "icde"};
  QuerySuggestionConfig cfg;
  cfg.num_reduce_tasks = 4;
  const auto input = QueryInput(queries);
  const auto expected = RunToMap(cfg, input);
  for (auto scheme : {QuerySuggestionConfig::Scheme::kPrefix1,
                      QuerySuggestionConfig::Scheme::kPrefix5}) {
    cfg.scheme = scheme;
    EXPECT_EQ(RunToMap(cfg, input), expected);
  }
}

TEST(QuerySuggestion, QuadraticMapOutput) {
  // A query of length n produces n records totalling ~n^2/2 + n bytes
  // (Section 2's cost analysis), plus one count byte per record.
  QuerySuggestionConfig cfg;
  cfg.num_reduce_tasks = 2;
  JobMetrics m;
  MustRun(MakeQuerySuggestionJob(cfg),
          {MakeSplit(QueryInput({"watch how i met your mother online"}))},
          &m);
  const uint64_t n = 34;
  EXPECT_EQ(m.map_output_records, n);
  EXPECT_EQ(m.map_output_bytes, n * (n + 1) / 2 + n * n + n);
}

TEST(QuerySuggestion, CountedQueryCodec) {
  std::string encoded;
  workloads::EncodeCountedQuery(123456, Slice("a query"), &encoded);
  uint64_t count;
  Slice query;
  ASSERT_TRUE(workloads::DecodeCountedQuery(encoded, &count, &query));
  EXPECT_EQ(count, 123456u);
  EXPECT_EQ(query.ToString(), "a query");
  EXPECT_FALSE(workloads::DecodeCountedQuery(Slice(), &count, &query));
}

TEST(QuerySuggestion, FeatureFieldsIgnored) {
  QuerySuggestionConfig cfg;
  cfg.num_reduce_tasks = 1;
  auto with_features = RunToMap(cfg, {{"u0", "abc\t10\t3"}});
  auto without = RunToMap(cfg, {{"u0", "abc"}});
  EXPECT_EQ(with_features, without);
}

TEST(QuerySuggestion, ExtraWorkDoesNotChangeOutput) {
  QuerySuggestionConfig cfg;
  cfg.num_reduce_tasks = 2;
  const auto input = QueryInput({"mango", "manga", "map"});
  const auto expected = RunToMap(cfg, input);
  cfg.extra_work = 1;
  EXPECT_EQ(RunToMap(cfg, input), expected);
}

}  // namespace
}  // namespace antimr
