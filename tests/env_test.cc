// Env contract tests, run against both implementations via TEST_P.
#include "io/env.h"

#include <unistd.h>

#include <functional>

#include <gtest/gtest.h>

namespace antimr {
namespace {

struct EnvFactory {
  const char* name;
  std::function<std::unique_ptr<Env>()> make;
};

class EnvTest : public ::testing::TestWithParam<EnvFactory> {
 protected:
  void SetUp() override { env_ = GetParam().make(); }

  std::string ReadAll(const std::string& fname) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(fname, &file).ok());
    std::string out;
    char scratch[4096];
    while (true) {
      Slice chunk;
      EXPECT_TRUE(file->Read(sizeof(scratch), &chunk, scratch).ok());
      if (chunk.empty()) break;
      out.append(chunk.data(), chunk.size());
    }
    return out;
  }

  void WriteFile(const std::string& fname, const std::string& contents) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    ASSERT_TRUE(file->Append(contents).ok());
    ASSERT_TRUE(file->Close().ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  WriteFile("f1", "hello world");
  EXPECT_EQ(ReadAll("f1"), "hello world");
}

TEST_P(EnvTest, EmptyFile) {
  WriteFile("empty", "");
  EXPECT_EQ(ReadAll("empty"), "");
  uint64_t size = 99;
  ASSERT_TRUE(env_->GetFileSize("empty", &size).ok());
  EXPECT_EQ(size, 0u);
}

TEST_P(EnvTest, AppendAccumulates) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("f", &file).ok());
  ASSERT_TRUE(file->Append("abc").ok());
  ASSERT_TRUE(file->Append("def").ok());
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ(ReadAll("f"), "abcdef");
}

TEST_P(EnvTest, OverwriteTruncates) {
  WriteFile("f", "long old contents");
  WriteFile("f", "new");
  EXPECT_EQ(ReadAll("f"), "new");
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> file;
  EXPECT_TRUE(env_->NewSequentialFile("nope", &file).IsNotFound());
  uint64_t size;
  EXPECT_TRUE(env_->GetFileSize("nope", &size).IsNotFound());
  EXPECT_TRUE(env_->DeleteFile("nope").IsNotFound());
  EXPECT_FALSE(env_->FileExists("nope"));
}

TEST_P(EnvTest, DeleteRemoves) {
  WriteFile("f", "x");
  EXPECT_TRUE(env_->FileExists("f"));
  ASSERT_TRUE(env_->DeleteFile("f").ok());
  EXPECT_FALSE(env_->FileExists("f"));
}

TEST_P(EnvTest, GetFileSize) {
  WriteFile("f", std::string(12345, 'x'));
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("f", &size).ok());
  EXPECT_EQ(size, 12345u);
}

TEST_P(EnvTest, SequentialSkip) {
  WriteFile("f", "0123456789");
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile("f", &file).ok());
  ASSERT_TRUE(file->Skip(4).ok());
  char scratch[16];
  Slice chunk;
  ASSERT_TRUE(file->Read(3, &chunk, scratch).ok());
  EXPECT_EQ(chunk.ToString(), "456");
}

TEST_P(EnvTest, RandomAccessRead) {
  WriteFile("f", "0123456789");
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile("f", &file).ok());
  char scratch[16];
  Slice chunk;
  ASSERT_TRUE(file->Read(3, 4, &chunk, scratch).ok());
  EXPECT_EQ(chunk.ToString(), "3456");
  // Reading past EOF yields the available suffix, then nothing.
  ASSERT_TRUE(file->Read(8, 10, &chunk, scratch).ok());
  EXPECT_EQ(chunk.ToString(), "89");
  ASSERT_TRUE(file->Read(100, 10, &chunk, scratch).ok());
  EXPECT_TRUE(chunk.empty());
}

TEST_P(EnvTest, StatsCountBytes) {
  env_->ResetStats();
  WriteFile("f", std::string(1000, 'a'));
  ReadAll("f");
  const IoStats stats = env_->stats();
  EXPECT_EQ(stats.bytes_written, 1000u);
  EXPECT_EQ(stats.bytes_read, 1000u);
  EXPECT_EQ(stats.files_created, 1u);
  env_->ResetStats();
  EXPECT_EQ(env_->stats().bytes_written, 0u);
}

TEST_P(EnvTest, ListFiles) {
  WriteFile("a", "1");
  WriteFile("b", "2");
  std::vector<std::string> names;
  ASSERT_TRUE(env_->ListFiles(&names).ok());
  EXPECT_EQ(names.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Envs, EnvTest,
    ::testing::Values(
        EnvFactory{"mem", []() { return NewMemEnv(); }},
        EnvFactory{"posix",
                   []() {
                     static int counter = 0;
                     return NewPosixEnv("/tmp/antimr_env_test_" +
                                        std::to_string(getpid()) + "_" +
                                        std::to_string(counter++));
                   }}),
    [](const ::testing::TestParamInfo<EnvFactory>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace antimr
