#include "common/slice.h"

#include <type_traits>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Slice, DefaultIsEmpty) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(Slice, FromString) {
  std::string str = "hello";
  Slice s(str);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_EQ(s[1], 'e');
}

TEST(Slice, FromCString) {
  Slice s("abc");
  EXPECT_EQ(s.size(), 3u);
}

TEST(Slice, RemovePrefix) {
  Slice s("abcdef");
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  s.RemovePrefix(4);
  EXPECT_TRUE(s.empty());
}

TEST(Slice, CompareIsBytewise) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  // Prefix sorts first.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  // Unsigned byte comparison: 0xFF > 0x01.
  const char high[] = {'\xff'};
  const char low[] = {'\x01'};
  EXPECT_GT(Slice(high, 1).compare(Slice(low, 1)), 0);
}

TEST(Slice, EmbeddedNulBytesCompare) {
  const char a[] = {'x', '\0', 'a'};
  const char b[] = {'x', '\0', 'b'};
  EXPECT_LT(Slice(a, 3).compare(Slice(b, 3)), 0);
  EXPECT_EQ(Slice(a, 3).compare(Slice(a, 3)), 0);
}

TEST(Slice, StartsWith) {
  Slice s("antimr");
  EXPECT_TRUE(s.starts_with(Slice("anti")));
  EXPECT_TRUE(s.starts_with(Slice("")));
  EXPECT_FALSE(s.starts_with(Slice("mr")));
  EXPECT_FALSE(Slice("a").starts_with(Slice("ab")));
}

TEST(Slice, Operators) {
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(Slice, LiteralConvertsImplicitly) {
  // Char arrays (string literals) have stable storage, so they keep the
  // implicit conversion; this must stay compiling.
  Slice s = "literal";
  EXPECT_EQ(s.ToString(), "literal");
  EXPECT_TRUE((std::is_convertible<const char (&)[4], Slice>::value));
}

TEST(Slice, RawPointerRequiresExplicitConstruction) {
  // A const char* of unknown provenance must not silently become a stored
  // view — the constructor is explicit.
  EXPECT_FALSE((std::is_convertible<const char*, Slice>::value));
  const std::string backing = "from-a-pointer";
  const char* p = backing.c_str();
  Slice s(p);  // explicit construction still works
  EXPECT_EQ(s.ToString(), "from-a-pointer");
}

TEST(Slice, LiteralStopsAtEmbeddedNul) {
  // The array constructor measures with strlen, matching the old const
  // char* behavior for literals.
  Slice s = "ab\0cd";
  EXPECT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace antimr
