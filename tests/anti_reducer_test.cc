// Unit-level tests of AntiReducer's decode/drain machinery (Algorithms 2
// and 4): driving Reduce calls directly with hand-built encoded payloads and
// recording the order and contents of the original Reduce invocations.
#include "anticombine/anti_reducer.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "anticombine/encoding.h"
#include "mr/metrics.h"
#include "mr/reduce_task.h"

namespace antimr {
namespace anticombine {
namespace {

// ValueIterator over (record key, payload) pairs, exposing per-record keys
// like the framework's group iterator does.
class PayloadIterator : public ValueIterator {
 public:
  explicit PayloadIterator(std::vector<KV> items)
      : items_(std::move(items)) {}

  bool Next(Slice* value) override {
    if (pos_ >= items_.size()) return false;
    *value = items_[pos_].value;
    ++pos_;
    return true;
  }

  Slice key() const override { return items_[pos_ - 1].key; }

 private:
  std::vector<KV> items_;
  size_t pos_ = 0;
};

// Records every (key, values) group the original Reduce receives.
class RecordingReducer : public Reducer {
 public:
  struct Call {
    std::string key;
    std::vector<std::string> values;
  };

  explicit RecordingReducer(std::vector<Call>* log) : log_(log) {}

  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext*) override {
    Call call;
    call.key = key.ToString();
    Slice v;
    while (values->Next(&v)) call.values.push_back(v.ToString());
    log_->push_back(std::move(call));
  }

 private:
  std::vector<Call>* log_;
};

// Scripted mapper for Lazy re-execution: input value "a:v1 b:v2 ..." emits
// (a, v1), (b, v2), ...
class RemapMapper : public Mapper {
 public:
  void Map(const Slice&, const Slice& value, MapContext* ctx) override {
    size_t start = 0;
    const std::string text(value.data(), value.size());
    while (start < text.size()) {
      size_t end = text.find(' ', start);
      if (end == std::string::npos) end = text.size();
      const std::string token = text.substr(start, end - start);
      const size_t colon = token.find(':');
      if (colon != std::string::npos) {
        ctx->Emit(token.substr(0, colon), token.substr(colon + 1));
      }
      start = end + 1;
    }
  }
};

// Partition = first character digit.
class DigitPartitioner : public Partitioner {
 public:
  int Partition(const Slice& key, int num_partitions) const override {
    return (key.empty() ? 0 : key[0] - '0') % num_partitions;
  }
};

std::string EagerValue(const std::vector<std::string>& other_keys,
                       const std::string& value) {
  std::vector<Slice> keys(other_keys.begin(), other_keys.end());
  std::string payload;
  EncodeEagerPayload(keys, value, &payload);
  return payload;
}

std::string LazyValue(const std::string& input_key,
                      const std::string& input_value) {
  std::string payload;
  EncodeLazyPayload(input_key, input_value, &payload);
  return payload;
}

class AntiReducerTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  std::unique_ptr<AntiReducer> MakeReducer(
      const AntiCombineOptions& options = AntiCombineOptions(),
      ReducerFactory combiner = nullptr) {
    auto reducer = std::make_unique<AntiReducer>(
        [this]() { return std::make_unique<RecordingReducer>(&log_); },
        []() { return std::make_unique<RemapMapper>(); }, combiner, options);
    info_.task_id = 1;
    info_.shuffle_partition = 1;
    info_.num_reduce_tasks = 4;
    info_.partitioner = &partitioner_;
    info_.key_cmp = BytewiseCompare;
    info_.grouping_cmp = BytewiseCompare;
    info_.env = env_.get();
    info_.metrics = &metrics_;
    reducer->Setup(info_, &ctx_);
    return reducer;
  }

  // One framework-style Reduce call: all records share a group key.
  void Call(AntiReducer* reducer, std::vector<KV> items) {
    PayloadIterator it(items);
    reducer->Reduce(items.front().key, &it, &ctx_);
  }

  std::unique_ptr<Env> env_;
  DigitPartitioner partitioner_;
  JobMetrics metrics_;
  TaskInfo info_;
  std::vector<RecordingReducer::Call> log_;
  CollectingContext ctx_{&sink_};
  std::vector<KV> sink_;
};

TEST_F(AntiReducerTest, PlainRecordsPassStraightThrough) {
  auto reducer = MakeReducer();
  Call(reducer.get(), {{"1a", EagerValue({}, "v1")},
                       {"1a", EagerValue({}, "v2")}});
  Call(reducer.get(), {{"1b", EagerValue({}, "w")}});
  reducer->Cleanup(&ctx_);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].key, "1a");
  EXPECT_EQ(log_[0].values, (std::vector<std::string>{"v1", "v2"}));
  EXPECT_EQ(log_[1].key, "1b");
}

TEST_F(AntiReducerTest, EagerKeysDecodeBeforeTheirReduceCall) {
  auto reducer = MakeReducer();
  // "1a" carries "1c" and "1e"; the regular input stream then delivers
  // "1d": the Shared key "1c" must be reduced before "1d" (repeat-until
  // loop), "1e" after (cleanup).
  Call(reducer.get(), {{"1a", EagerValue({"1c", "1e"}, "shared")}});
  Call(reducer.get(), {{"1d", EagerValue({}, "direct")}});
  reducer->Cleanup(&ctx_);
  ASSERT_EQ(log_.size(), 4u);
  EXPECT_EQ(log_[0].key, "1a");
  EXPECT_EQ(log_[0].values, std::vector<std::string>{"shared"});
  EXPECT_EQ(log_[1].key, "1c");
  EXPECT_EQ(log_[1].values, std::vector<std::string>{"shared"});
  EXPECT_EQ(log_[2].key, "1d");
  EXPECT_EQ(log_[3].key, "1e");
}

TEST_F(AntiReducerTest, SharedAndDirectValuesMergeForSameKey) {
  auto reducer = MakeReducer();
  // "1a" parks a value for "1c"; later the stream also has records for
  // "1c": the Reduce call for "1c" must see both.
  Call(reducer.get(), {{"1a", EagerValue({"1c"}, "from-shared")}});
  Call(reducer.get(), {{"1c", EagerValue({}, "from-stream")}});
  reducer->Cleanup(&ctx_);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[1].key, "1c");
  ASSERT_EQ(log_[1].values.size(), 2u);
  // Both values present regardless of order.
  EXPECT_NE(std::find(log_[1].values.begin(), log_[1].values.end(),
                      "from-shared"),
            log_[1].values.end());
  EXPECT_NE(std::find(log_[1].values.begin(), log_[1].values.end(),
                      "from-stream"),
            log_[1].values.end());
}

TEST_F(AntiReducerTest, LazyRemapKeepsOnlyThisPartition) {
  auto reducer = MakeReducer();
  // Re-executed Map emits to partitions 1 (keys starting '1') and 2 (keys
  // starting '2'); this reduce task is partition 1.
  Call(reducer.get(),
       {{"1a", LazyValue("ik", "1a:x 2b:y 1c:z")}});
  reducer->Cleanup(&ctx_);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].key, "1a");
  EXPECT_EQ(log_[0].values, std::vector<std::string>{"x"});
  EXPECT_EQ(log_[1].key, "1c");
  EXPECT_EQ(log_[1].values, std::vector<std::string>{"z"});
  EXPECT_EQ(metrics_.remap_calls, 1u);
}

TEST_F(AntiReducerTest, MixedEncodingsInOneGroup) {
  auto reducer = MakeReducer();
  Call(reducer.get(), {{"1a", EagerValue({}, "plain")},
                       {"1a", EagerValue({"1b"}, "eager")},
                       {"1a", LazyValue("ik", "1a:lazy 1b:lazy2")}});
  reducer->Cleanup(&ctx_);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].key, "1a");
  // 1a's values: plain + eager + lazy (order within group unspecified).
  EXPECT_EQ(log_[0].values.size(), 3u);
  EXPECT_EQ(log_[1].key, "1b");
  EXPECT_EQ(log_[1].values.size(), 2u);
}

TEST_F(AntiReducerTest, CombinerCollapsesSharedValues) {
  class SumCombiner : public Reducer {
   public:
    void Reduce(const Slice& key, ValueIterator* values,
                ReduceContext* ctx) override {
      long total = 0;
      Slice v;
      while (values->Next(&v)) total += std::stol(v.ToString());
      ctx->Emit(key, std::to_string(total));
    }
  };
  auto reducer = MakeReducer(
      AntiCombineOptions(),
      []() { return std::make_unique<SumCombiner>(); });
  Call(reducer.get(), {{"1a", EagerValue({"1b", "1b", "1b"}, "1")}});
  reducer->Cleanup(&ctx_);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[1].key, "1b");
  EXPECT_EQ(log_[1].values, std::vector<std::string>{"3"});
  EXPECT_GT(metrics_.combine_input_records, 0u);
}

TEST_F(AntiReducerTest, SharedSpillsDoNotChangeResults) {
  AntiCombineOptions options;
  options.shared_memory_bytes = 128;
  auto reducer = MakeReducer(options);
  std::vector<std::string> other_keys;
  for (int i = 10; i < 60; ++i) other_keys.push_back("1k" + std::to_string(i));
  Call(reducer.get(),
       {{"1a", EagerValue(other_keys, std::string(30, 'v'))}});
  reducer->Cleanup(&ctx_);
  EXPECT_EQ(log_.size(), 51u);  // 1a + 50 decoded keys
  EXPECT_GT(metrics_.shared_spills, 0u);
  // Keys must still come out in order despite spills.
  for (size_t i = 1; i < log_.size(); ++i) {
    EXPECT_LT(log_[i - 1].key, log_[i].key);
  }
}

TEST_F(AntiReducerTest, EmptyTaskCleanupIsSafe) {
  auto reducer = MakeReducer();
  reducer->Cleanup(&ctx_);
  EXPECT_TRUE(log_.empty());
}

}  // namespace
}  // namespace anticombine
}  // namespace antimr
