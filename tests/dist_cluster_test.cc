// The distributed engine end to end: a Coordinator plus in-process Worker
// objects over one shared transport must produce byte-identical output to
// the single-process RunJob path — on the loopback transport and on real
// TCP sockets, with and without workers dying mid-job. Worker-loss recovery
// is the MapReduce contract: segments on a dead worker are gone, so the
// driver re-runs that worker's maps elsewhere before retrying the reduce.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/coordinator.h"
#include "engine/job_registry.h"
#include "engine/worker.h"
#include "datagen/cloud.h"
#include "datagen/random_text.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/federation.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "test_util.h"
#include "workloads/registry.h"

namespace antimr {
namespace {

using engine::Coordinator;
using engine::CoordinatorOptions;
using engine::DistJobOptions;
using engine::DistJobResult;
using engine::RunDistributedJob;
using engine::Worker;
using engine::WorkerOptions;

/// Chunk records exactly like MakeSplits so the distributed splits carry the
/// same per-map record ranges as the single-process splits.
std::vector<std::vector<KV>> Chunk(std::vector<KV> records, int num_splits) {
  std::vector<std::vector<KV>> chunks;
  const size_t per =
      (records.size() + num_splits - 1) / static_cast<size_t>(num_splits);
  for (size_t start = 0; start < records.size(); start += per) {
    const size_t end = std::min(records.size(), start + per);
    chunks.emplace_back(records.begin() + static_cast<long>(start),
                        records.begin() + static_cast<long>(end));
  }
  if (chunks.empty()) chunks.emplace_back();
  return chunks;
}

std::vector<KV> WordCountInput() {
  RandomTextConfig config;
  config.num_lines = 3000;
  config.seed = 11;
  return RandomTextGenerator(config).Generate();
}

/// Single-process reference output for a registered job over `records`.
std::vector<KV> SingleProcessOutput(const std::string& job_name,
                                    const net::JobParams& params,
                                    const std::vector<KV>& records,
                                    int maps) {
  JobSpec spec;
  Status st = engine::BuildRegisteredJob(job_name, params, &spec);
  EXPECT_TRUE(st.ok()) << st.ToString();
  RunOptions run;
  run.collect_output = true;
  JobResult result;
  st = RunJob(spec, MakeSplits(records, maps), run, &result);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return result.FlatOutput();
}

class DistClusterTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    workloads::RegisterStandardJobs();
    transport_ = GetParam() == std::string("tcp")
                     ? net::NewTcpTransport()
                     : net::NewLoopbackTransport();
    CoordinatorOptions options;
    // Fast loss detection keeps the crash tests quick; workers heartbeat
    // every 50ms so a healthy worker never trips it.
    options.heartbeat_timeout_nanos = 400ull * 1000 * 1000;
    options.monitor_period_nanos = 20ull * 1000 * 1000;
    coord_ = std::make_unique<Coordinator>(transport_.get(), options);
    ASSERT_TRUE(coord_->Start("").ok());
  }

  void TearDown() override {
    coord_->Stop();
    for (auto& worker : workers_) worker->Stop();
  }

  void StartWorkers(int n) {
    for (int i = 0; i < n; ++i) {
      WorkerOptions options;
      options.name = "w" + std::to_string(i);
      options.slots = 2;
      options.heartbeat_period_nanos = 50ull * 1000 * 1000;
      workers_.push_back(
          std::make_unique<Worker>(transport_.get(), options));
    }
    // Hooks must be in place before Start; tests that use them set the
    // shared state the hooks read afterwards.
    for (auto& worker : workers_) {
      ASSERT_TRUE(worker->Start(coord_->addr()).ok());
    }
    ASSERT_TRUE(coord_->WaitForWorkers(n, 10ull * 1000 * 1000 * 1000));
  }

  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<Coordinator> coord_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

TEST_P(DistClusterTest, WordCountMatchesSingleProcess) {
  const std::vector<KV> input = WordCountInput();
  const net::JobParams params = {{"reduces", "4"},
                                 {"anti_combine", "adaptive"}};
  StartWorkers(3);

  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = params;
  options.splits = Chunk(input, 6);
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(result.FlatOutput(),
            SingleProcessOutput("wordcount", params, input, 6));
  EXPECT_EQ(result.map_reruns, 0u);
  EXPECT_GT(result.metrics.output_records, 0u);
}

TEST_P(DistClusterTest, ThetaJoinMatchesSingleProcess) {
  CloudConfig config;
  config.num_records = 2000;
  config.seed = 5;
  const std::vector<KV> input = CloudGenerator(config).Generate();
  const net::JobParams params = {{"reduces", "4"},
                                 {"grid_rows", "4"},
                                 {"grid_cols", "4"},
                                 {"anti_combine", "eager"}};
  StartWorkers(2);

  DistJobOptions options;
  options.job_name = "theta_join";
  options.params = params;
  options.splits = Chunk(input, 4);
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.FlatOutput(),
            SingleProcessOutput("theta_join", params, input, 4));
}

TEST_P(DistClusterTest, WorkerCrashMidMapRecovers) {
  const std::vector<KV> input = WordCountInput();
  const net::JobParams params = {{"reduces", "3"}};
  std::atomic<bool> crashed{false};
  StartWorkers(3);
  // The first map that lands on worker 0 kills it mid-task: its result is
  // never sent and every segment it produced is unreachable.
  workers_[0]->on_map_start = [&](int, uint32_t) {
    if (!crashed.exchange(true)) workers_[0]->Crash();
  };

  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = params;
  options.splits = Chunk(input, 6);
  options.max_task_attempts = 4;
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_TRUE(crashed.load());
  EXPECT_EQ(result.FlatOutput(),
            SingleProcessOutput("wordcount", params, input, 6));
}

TEST_P(DistClusterTest, WorkerCrashMidShuffleFetchRecovers) {
  const std::vector<KV> input = WordCountInput();
  const net::JobParams params = {{"reduces", "4"}};
  StartWorkers(2);

  // Kill the worker that owns map 0's segments the moment a reduce on the
  // *other* worker starts — that reduce's shuffle fetches hit a dead
  // SegmentServer, so recovery must re-run the lost maps, not just retry
  // the fetch.
  std::atomic<Worker*> map_owner{nullptr};
  std::atomic<bool> crashed{false};
  for (auto& worker : workers_) {
    Worker* self = worker.get();
    self->on_map_start = [&map_owner, self](int, uint32_t) {
      Worker* expected = nullptr;
      map_owner.compare_exchange_strong(expected, self);
    };
    self->on_reduce_start = [&map_owner, &crashed, self](int, uint32_t) {
      Worker* owner = map_owner.load();
      if (owner != nullptr && owner != self && !crashed.exchange(true)) {
        owner->Crash();
      }
    };
  }

  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = params;
  options.splits = Chunk(input, 6);
  options.max_task_attempts = 4;
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_TRUE(crashed.load());
  EXPECT_GT(result.map_reruns, 0u);
  EXPECT_EQ(result.FlatOutput(),
            SingleProcessOutput("wordcount", params, input, 6));
}

TEST_P(DistClusterTest, SilentWorkerIsDeclaredLostByHeartbeatTimeout) {
  obs::Counter* lost = obs::MetricsRegistry::Global().GetCounter(
      "antimr_coord_workers_lost_total", "");
  const uint64_t lost_before = lost->value();

  // A hand-rolled worker that registers and then goes silent — the conn
  // stays open, so only the heartbeat monitor can declare it dead.
  std::unique_ptr<net::Conn> conn;
  ASSERT_TRUE(transport_->Dial(coord_->addr(), &conn).ok());
  net::RegisterMsg reg;
  reg.worker_name = "zombie";
  reg.shuffle_addr = "nowhere:0";
  reg.slots = 1;
  std::string payload;
  net::EncodeRegister(reg, &payload);
  ASSERT_TRUE(net::WriteFrame(conn.get(), net::kRegister, payload).ok());
  uint8_t type = 0;
  ASSERT_TRUE(net::ReadFrame(conn.get(), &type, &payload).ok());
  ASSERT_EQ(type, net::kRegisterAck);
  ASSERT_EQ(coord_->live_workers(), 1);

  for (int i = 0; i < 100 && coord_->live_workers() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(coord_->live_workers(), 0);
  EXPECT_EQ(lost->value(), lost_before + 1);
}

TEST_P(DistClusterTest, RegisterThenDieIsNotCountedInQuorum) {
  // A worker that registers and immediately dies used to satisfy
  // WaitForWorkers: its `alive` flag is set at registration and only
  // cleared once the receiver observes the closed connection. The settle
  // window re-checks liveness, so the zombie must not be handed to the
  // driver as capacity.
  std::unique_ptr<net::Conn> conn;
  ASSERT_TRUE(transport_->Dial(coord_->addr(), &conn).ok());
  net::RegisterMsg reg;
  reg.worker_name = "flash";
  reg.shuffle_addr = "nowhere:0";
  reg.slots = 1;
  std::string payload;
  net::EncodeRegister(reg, &payload);
  ASSERT_TRUE(net::WriteFrame(conn.get(), net::kRegister, payload).ok());
  uint8_t type = 0;
  ASSERT_TRUE(net::ReadFrame(conn.get(), &type, &payload).ok());
  ASSERT_EQ(type, net::kRegisterAck);
  conn->Close();

  EXPECT_FALSE(coord_->WaitForWorkers(1, 500ull * 1000 * 1000));

  // A healthy worker still satisfies the same quorum (StartWorkers asserts
  // WaitForWorkers returns true).
  StartWorkers(1);
}

TEST_P(DistClusterTest, SpeculationRescuesStragglerWithUnchangedOutput) {
  const std::vector<KV> input = WordCountInput();
  const net::JobParams params = {{"reduces", "3"}};
  StartWorkers(3);

  // The first map placed on worker 0 stalls long past the forced
  // speculation threshold; the backup attempt on another worker must win
  // the race while the straggler is cancelled — and the output must be
  // exactly the single-process result, as if the race never happened.
  std::atomic<bool> stalled{false};
  workers_[0]->on_map_start = [&](int, uint32_t) {
    if (!stalled.exchange(true)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  };

  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = params;
  options.splits = Chunk(input, 6);
  options.max_task_attempts = 4;
  options.speculative_execution = true;
  options.speculation_force_after_nanos = 50ull * 1000 * 1000;
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_TRUE(stalled.load());
  EXPECT_GE(result.spec_backups, 1u);
  EXPECT_EQ(result.FlatOutput(),
            SingleProcessOutput("wordcount", params, input, 6));
}

TEST_P(DistClusterTest, SpeculationOffByDefaultLaunchesNoBackups) {
  const std::vector<KV> input = WordCountInput();
  StartWorkers(2);
  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = {{"reduces", "3"}};
  options.splits = Chunk(input, 4);
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.spec_backups, 0u);
  EXPECT_EQ(result.spec_backup_wins, 0u);
  EXPECT_EQ(result.spec_cancels, 0u);
}

TEST_P(DistClusterTest, NoWorkersFailsAfterRetryBudget) {
  DistJobOptions options;
  options.job_name = "wordcount";
  options.splits = Chunk(WordCountInput(), 2);
  options.max_task_attempts = 2;
  options.retry_backoff_nanos = 1000;
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient()) << st.ToString();
}

TEST_P(DistClusterTest, UnknownJobFailsFast) {
  StartWorkers(1);
  DistJobOptions options;
  options.job_name = "no_such_job";
  options.splits = {{}};
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kNotFound) << st.ToString();
}

TEST_P(DistClusterTest, ClusterTraceCapturesRerunAcrossWorkerLanes) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  const std::vector<KV> input = WordCountInput();
  std::atomic<bool> crashed{false};
  StartWorkers(3);
  // Kill one worker mid-map so the merged trace must show the re-executed
  // attempt on a surviving worker's lane.
  workers_[0]->on_map_start = [&](int, uint32_t) {
    if (!crashed.exchange(true)) workers_[0]->Crash();
  };

  obs::Tracer::Global().Start();
  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = {{"reduces", "3"}};
  options.splits = Chunk(input, 6);
  options.max_task_attempts = 4;
  DistJobResult result;
  const Status st = RunDistributedJob(coord_.get(), options, &result);
  obs::Tracer::Global().Stop();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(crashed.load());

  const std::string json = coord_->ClusterTraceJson();
  obs::Tracer::Global().Clear();

  // One pid lane per process, each labeled: coordinator plus all three
  // registered workers (the dead one keeps its lane).
  EXPECT_NE(json.find("\"coord\""), std::string::npos);
  EXPECT_NE(json.find("\"worker:w0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker:w1\""), std::string::npos);
  EXPECT_NE(json.find("\"worker:w2\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  // The healed map ran as a later attempt; task span names carry it.
  EXPECT_NE(json.find("dist_map:"), std::string::npos);
  EXPECT_NE(json.find("#a1"), std::string::npos);
  EXPECT_NE(json.find("dist_reduce:"), std::string::npos);
  // Dispatch flow arrows: 's' on the coordinator, 'f' inside the worker's
  // task span, bound to the enclosing-slice end.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST_P(DistClusterTest, FederatedWireBytesMatchFrameCounters) {
  StartWorkers(2);
  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = {{"reduces", "2"}};
  options.splits = Chunk(WordCountInput(), 4);
  DistJobResult result;
  ASSERT_TRUE(RunDistributedJob(coord_.get(), options, &result).ok());

  // Wait for at least one post-job heartbeat from every worker so the
  // federated view has folded both registries.
  for (int i = 0; i < 200 && coord_->cluster_metrics().worker_count() < 2;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(coord_->cluster_metrics().worker_count(), 2u);

  // In-process workers share the coordinator's registry, so the cluster
  // total must equal the single frame-layer counter — sandwiched between
  // two live snapshots because heartbeats keep flowing. If federation
  // double-counted the shared incarnation, the total would be ~3x.
  const net::WireCounters before = net::SnapshotWireCounters();
  const obs::MetricsSnapshot totals = coord_->cluster_metrics().ClusterTotals(
      &obs::MetricsRegistry::Global(), obs::ProcessUid());
  const net::WireCounters after = net::SnapshotWireCounters();
  const uint64_t sent = totals.counters.at("antimr_net_bytes_sent_total");
  const uint64_t received =
      totals.counters.at("antimr_net_bytes_received_total");
  EXPECT_GE(sent, before.bytes_sent);
  EXPECT_LE(sent, after.bytes_sent);
  EXPECT_GE(received, before.bytes_received);
  EXPECT_LE(received, after.bytes_received);

  // The Prometheus rendering carries per-worker attribution and the
  // per-frame size histograms observed at the same frame boundary.
  const std::string text = coord_->ClusterMetricsText();
  EXPECT_NE(text.find("antimr_net_bytes_sent_total{worker=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_net_bytes_sent_total{worker=\"2\"}"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_net_frame_sent_bytes_count"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_net_frame_received_bytes_count"),
            std::string::npos);
}

TEST_P(DistClusterTest, StatusServerServesStatusAndMetrics) {
  ASSERT_TRUE(coord_->StartStatusServer("").ok());
  ASSERT_FALSE(coord_->status_addr().empty());
  StartWorkers(2);

  DistJobOptions options;
  options.job_name = "wordcount";
  options.params = {{"reduces", "2"}};
  options.splits = Chunk(WordCountInput(), 4);
  DistJobResult result;
  ASSERT_TRUE(RunDistributedJob(coord_.get(), options, &result).ok());

  std::string body;
  ASSERT_TRUE(net::HttpGet(transport_.get(), coord_->status_addr(), "/status",
                           &body)
                  .ok());
  EXPECT_NE(body.find("\"live_workers\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"w0\""), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"w1\""), std::string::npos);
  EXPECT_NE(body.find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(body.find("\"maps_total\": 4"), std::string::npos);
  EXPECT_NE(body.find("\"maps_done\": 4"), std::string::npos);
  EXPECT_NE(body.find("\"reduces_done\": 2"), std::string::npos);

  body.clear();
  ASSERT_TRUE(net::HttpGet(transport_.get(), coord_->status_addr(), "/metrics",
                           &body)
                  .ok());
  EXPECT_NE(body.find("antimr_net_bytes_sent_total"), std::string::npos);
  EXPECT_NE(body.find("antimr_coord_rpc_latency_nanos_count"),
            std::string::npos);

  EXPECT_FALSE(net::HttpGet(transport_.get(), coord_->status_addr(),
                            "/no_such_path", &body)
                   .ok());
}

TEST_P(DistClusterTest, DeadWorkerSeriesRetainedInClusterMetrics) {
  StartWorkers(2);
  for (int i = 0; i < 200 && coord_->cluster_metrics().worker_count() < 2;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(coord_->cluster_metrics().worker_count(), 2u);

  workers_[0]->Crash();
  for (int i = 0; i < 200 && coord_->live_workers() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(coord_->live_workers(), 1);

  // Retention: the lost worker's final snapshot stays federated — its
  // labeled series keep appearing and its counters stay in the totals.
  EXPECT_EQ(coord_->cluster_metrics().worker_count(), 2u);
  const std::string text = coord_->ClusterMetricsText();
  EXPECT_NE(text.find("{worker=\"1\"}"), std::string::npos);
  EXPECT_NE(text.find("{worker=\"2\"}"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Transports, DistClusterTest,
                         ::testing::Values("loopback", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace antimr
