#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace antimr {
namespace obs {
namespace {

TEST(MetricsRegistry, InstrumentPointersAreStable) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("requests", "total requests");
  EXPECT_EQ(c, reg.GetCounter("requests", "total requests"));
  Gauge* g = reg.GetGauge("depth", "queue depth");
  EXPECT_EQ(g, reg.GetGauge("depth", "queue depth"));
  Histogram* h = reg.GetHistogram("latency", "latency nanos");
  EXPECT_EQ(h, reg.GetHistogram("latency", "latency nanos"));
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossFree) {
  MetricsRegistry reg;
  Counter* counter = reg.GetCounter("hits", "");
  Gauge* gauge = reg.GetGauge("level", "");
  Histogram* hist = reg.GetHistogram("sizes", "");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        gauge->Add(1);
        gauge->Sub(1);
        hist->Observe(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(hist->count(), uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += hist->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, hist->count());
}

TEST(MetricsRegistry, HistogramBucketing) {
  // Bucket i holds v with 2^(i-1) < v <= 2^i; 0 and 1 share bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(5), 3);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 63);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 63) + 1),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketBound(10), 1024u);

  Histogram h;
  h.Observe(1);
  h.Observe(3);
  h.Observe(3);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 7u);
}

TEST(MetricsRegistry, PrometheusFormat) {
  MetricsRegistry reg;
  reg.GetCounter("antimr_hits_total", "hit count")->Inc(3);
  reg.GetGauge("antimr_depth", "queue depth")->Set(-2);
  Histogram* h = reg.GetHistogram("antimr_bytes", "bytes per op");
  h->Observe(1);
  h->Observe(3);

  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# HELP antimr_hits_total hit count"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE antimr_hits_total counter"), std::string::npos);
  EXPECT_NE(text.find("antimr_hits_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE antimr_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("antimr_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE antimr_bytes histogram"), std::string::npos);
  // Cumulative buckets: le="1" sees one sample, le="2" still one, le="4"
  // both, and so do every later bound and +Inf.
  EXPECT_NE(text.find("antimr_bytes_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_bytes_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_bytes_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_bytes_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("antimr_bytes_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("antimr_bytes_count 2\n"), std::string::npos);
  // Metric names come out sorted, so scrapes diff cleanly run to run.
  EXPECT_LT(text.find("antimr_bytes"), text.find("antimr_depth"));
  EXPECT_LT(text.find("antimr_depth"), text.find("antimr_hits_total"));
}

TEST(MetricsRegistry, JsonFormat) {
  MetricsRegistry reg;
  reg.GetCounter("c", "")->Inc(7);
  reg.GetGauge("g", "")->Set(5);
  Histogram* h = reg.GetHistogram("h", "");
  h->Observe(100);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"c\": {\"type\": \"counter\", \"value\": 7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"g\": {\"type\": \"gauge\", \"value\": 5}"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"h\": {\"type\": \"histogram\", \"count\": 1, \"sum\": 100, "
                "\"buckets\": [{\"le\": 128, \"count\": 1}]}"),
      std::string::npos);
}

TEST(MetricsRegistry, GlobalRegistryExposesPoolGauges) {
  // The TaskPool instrumentation registers its gauges in the global
  // registry at construction; any job run in this process (other tests, or
  // the pool built here) leaves them visible to a scrape.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("antimr_pool_queue_depth", "tasks queued, not yet started");
  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE antimr_pool_queue_depth gauge"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace antimr
