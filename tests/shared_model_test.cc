// Model-based property test of the Shared structure: random interleavings
// of Add / PeekMinKey / PopMinKeyValues, under varying memory limits and
// merge thresholds, compared against a trivial reference model
// (std::multimap). Any divergence in contents or drain order is a bug.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "anticombine/shared.h"
#include "common/random.h"
#include "mr/metrics.h"

namespace antimr {
namespace anticombine {
namespace {

struct ModelParam {
  uint64_t seed;
  size_t memory_limit;
  int merge_threshold;
  int key_space;
};

class SharedModelTest : public ::testing::TestWithParam<ModelParam> {};

TEST_P(SharedModelTest, MatchesReferenceModel) {
  const ModelParam& p = GetParam();
  auto env = NewMemEnv();
  JobMetrics metrics;
  Shared::Options options;
  options.key_cmp = BytewiseCompare;
  options.grouping_cmp = BytewiseCompare;
  options.env = env.get();
  options.file_prefix = "model";
  options.memory_limit_bytes = p.memory_limit;
  options.spill_merge_threshold = p.merge_threshold;
  options.metrics = &metrics;
  Shared shared(options);

  // Reference: multiset of (key, value) pairs, drained in key order.
  std::multimap<std::string, std::string> model;

  Random rng(p.seed);
  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.Uniform(10);
    if (op < 7) {
      // Add.
      const std::string key =
          "k" + std::to_string(rng.Uniform(static_cast<uint64_t>(p.key_space)));
      const std::string value = "v" + std::to_string(rng.Next() % 1000);
      shared.Add(key, value);
      model.emplace(key, value);
    } else if (op < 8) {
      // Peek: must agree on the minimal key (or emptiness).
      std::string min_key;
      const bool has = shared.PeekMinKey(&min_key);
      EXPECT_EQ(has, !model.empty());
      if (has) EXPECT_EQ(min_key, model.begin()->first);
    } else {
      // Pop: the minimal group, as a multiset of values.
      std::string group_key;
      std::vector<std::string> values;
      const bool popped = shared.PopMinKeyValues(&group_key, &values);
      EXPECT_EQ(popped, !model.empty());
      if (!popped) continue;
      const std::string expected_key = model.begin()->first;
      EXPECT_EQ(group_key, expected_key);
      std::multiset<std::string> expected;
      auto range = model.equal_range(expected_key);
      for (auto it = range.first; it != range.second; ++it) {
        expected.insert(it->second);
      }
      model.erase(expected_key);
      EXPECT_EQ(std::multiset<std::string>(values.begin(), values.end()),
                expected)
          << "group " << group_key;
    }
  }

  // Final drain must produce the remaining model contents in key order.
  std::string last_key;
  bool first = true;
  std::string group_key;
  std::vector<std::string> values;
  while (shared.PopMinKeyValues(&group_key, &values)) {
    if (!first) EXPECT_GT(group_key, last_key);
    first = false;
    last_key = group_key;
    std::multiset<std::string> expected;
    auto range = model.equal_range(group_key);
    for (auto it = range.first; it != range.second; ++it) {
      expected.insert(it->second);
    }
    EXPECT_EQ(std::multiset<std::string>(values.begin(), values.end()),
              expected);
    model.erase(group_key);
    values.clear();
  }
  EXPECT_TRUE(model.empty());
  EXPECT_TRUE(shared.Empty());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SharedModelTest,
    ::testing::Values(
        ModelParam{1, size_t{1} << 30, 10, 50},    // pure in-memory
        ModelParam{2, 1024, 10, 50},               // frequent spills
        ModelParam{3, 256, 2, 50},                 // spills + merges
        ModelParam{4, 1024, 10, 5},                // few hot keys
        ModelParam{5, 512, 3, 500},                // wide key space
        ModelParam{6, 64, 2, 20}),                 // pathological memory
    [](const ::testing::TestParamInfo<ModelParam>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace anticombine
}  // namespace antimr
