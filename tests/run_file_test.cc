#include "io/run_file.h"

#include <gtest/gtest.h>

namespace antimr {
namespace {

class RunFileTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  void WriteRun(const std::string& fname,
                const std::vector<std::pair<std::string, std::string>>& kvs) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    RunWriter writer(std::move(file));
    for (const auto& [k, v] : kvs) ASSERT_TRUE(writer.Add(k, v).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_F(RunFileTest, RoundTrip) {
  WriteRun("r", {{"a", "1"}, {"b", "2"}, {"c", "3"}});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  std::vector<std::pair<std::string, std::string>> got;
  while (stream->Valid()) {
    got.emplace_back(stream->key().ToString(), stream->value().ToString());
    ASSERT_TRUE(stream->Next().ok());
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(got[2], (std::pair<std::string, std::string>{"c", "3"}));
}

TEST_F(RunFileTest, EmptyRun) {
  WriteRun("r", {});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  EXPECT_FALSE(stream->Valid());
}

TEST_F(RunFileTest, EmptyKeysAndValues) {
  WriteRun("r", {{"", ""}, {"k", ""}, {"", "v"}});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  EXPECT_TRUE(stream->Valid());
  EXPECT_TRUE(stream->key().empty());
  EXPECT_TRUE(stream->value().empty());
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_EQ(stream->key().ToString(), "k");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_EQ(stream->value().ToString(), "v");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_FALSE(stream->Valid());
}

TEST_F(RunFileTest, BinaryPayloads) {
  std::string key("\x00\x01\xff", 3);
  std::string value(300, '\0');
  WriteRun("r", {{key, value}});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  EXPECT_EQ(stream->key().ToString(), key);
  EXPECT_EQ(stream->value().ToString(), value);
}

TEST_F(RunFileTest, RecordCountTracked) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("r", &file).ok());
  RunWriter writer(std::move(file));
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(writer.Add("k", "v").ok());
  }
  EXPECT_EQ(writer.record_count(), 17u);
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(RunFileTest, StringRunStreamParsesOwnedBuffer) {
  WriteRun("r", {{"x", "1"}, {"y", "2"}});
  std::string raw;
  ASSERT_TRUE(ReadFileToString(env_.get(), "r", &raw).ok());
  StringRunStream stream(std::move(raw));
  ASSERT_TRUE(stream.Open().ok());
  EXPECT_EQ(stream.key().ToString(), "x");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_EQ(stream.key().ToString(), "y");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_FALSE(stream.Valid());
}

TEST_F(RunFileTest, StringRunStreamRejectsTruncation) {
  WriteRun("r", {{"key", "value"}});
  std::string raw;
  ASSERT_TRUE(ReadFileToString(env_.get(), "r", &raw).ok());
  raw.pop_back();
  StringRunStream stream(std::move(raw));
  EXPECT_TRUE(stream.Open().IsCorruption());
}

// ---- Torn writes -----------------------------------------------------------
// A producer dying mid-write (or a partial flush surviving a crash) leaves a
// prefix of the block-framed file. The reader must surface Corruption —
// never crash, hang, or silently serve a short read as a complete run.

class TornWriteTest : public RunFileTest {
 protected:
  /// Write `n` records as a block-framed run with tiny blocks (many frames)
  /// and return the stored bytes.
  std::string WriteBlockRun(const std::string& fname, int n) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile(fname, &file).ok());
    BlockRunWriter::Options wopts;
    wopts.block_bytes = 256;  // force many blocks
    BlockRunWriter writer(std::move(file), GetCodec(CodecType::kNone), wopts);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(writer
                      .Add("key" + std::to_string(i),
                           "value value value " + std::to_string(i))
                      .ok());
    }
    EXPECT_TRUE(writer.Finish().ok());
    EXPECT_GT(writer.block_count(), 3u) << "test needs a multi-block file";
    std::string raw;
    EXPECT_TRUE(ReadFileToString(env_.get(), fname, &raw).ok());
    return raw;
  }

  void Rewrite(const std::string& fname, const std::string& bytes) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    ASSERT_TRUE(file->Append(Slice(bytes)).ok());
    ASSERT_TRUE(file->Close().ok());
  }

  /// Drain a reader over `fname`; returns the terminal status and the
  /// number of records served before it.
  Status DrainBlockRun(const std::string& fname, size_t* records_out) {
    std::unique_ptr<SequentialFile> file;
    Status st = env_->NewSequentialFile(fname, &file);
    if (!st.ok()) return st;
    BlockRunReader::Options ropts;
    ropts.name = fname;
    BlockRunReader reader(std::move(file), GetCodec(CodecType::kNone), ropts);
    st = reader.Open();
    size_t records = 0;
    while (st.ok() && reader.Valid()) {
      ++records;
      st = reader.Next();
    }
    *records_out = records;
    return st;
  }
};

TEST_F(TornWriteTest, TruncationMidBlockSurfacesCorruption) {
  const int kRecords = 100;
  const std::string full = WriteBlockRun("seg", kRecords);
  // Truncate inside an interior frame: half the file lands mid-block.
  Rewrite("seg", full.substr(0, full.size() / 2));
  size_t records = 0;
  const Status st = DrainBlockRun("seg", &records);
  ASSERT_FALSE(st.ok()) << "short read served as a complete run";
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_LT(records, static_cast<size_t>(kRecords));
}

TEST_F(TornWriteTest, TruncationInFinalBlockSurfacesCorruption) {
  const int kRecords = 100;
  const std::string full = WriteBlockRun("seg", kRecords);
  // Tear off the last few bytes: the final frame is cut short.
  Rewrite("seg", full.substr(0, full.size() - 3));
  size_t records = 0;
  const Status st = DrainBlockRun("seg", &records);
  ASSERT_FALSE(st.ok()) << "short read served as a complete run";
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_LT(records, static_cast<size_t>(kRecords));
}

TEST_F(TornWriteTest, SweepEveryTruncationPoint) {
  // No truncation point may crash, hang, or yield OK with all records: any
  // cut either hides whole tail frames (fewer records, detected by the
  // consumer's record accounting upstream) or surfaces Corruption here.
  const int kRecords = 60;
  const std::string full = WriteBlockRun("seg", kRecords);
  for (size_t cut = 0; cut < full.size(); cut += 13) {
    Rewrite("seg", full.substr(0, cut));
    size_t records = 0;
    const Status st = DrainBlockRun("seg", &records);
    if (st.ok()) {
      EXPECT_LT(records, static_cast<size_t>(kRecords))
          << "cut at " << cut << " served the full run from a torn file";
    } else {
      EXPECT_TRUE(st.IsCorruption()) << "cut at " << cut << ": "
                                     << st.ToString();
    }
  }
}

TEST_F(TornWriteTest, RewrittenFileReadsCleanlyAfterTornRead) {
  // The retry story: a consumer hits Corruption on a torn file, the
  // producer is re-executed and rewrites it, and the retried consumer must
  // then read every record.
  const int kRecords = 100;
  const std::string full = WriteBlockRun("seg", kRecords);
  Rewrite("seg", full.substr(0, full.size() / 2));
  size_t records = 0;
  ASSERT_TRUE(DrainBlockRun("seg", &records).IsCorruption());
  // Producer retry: the file is rewritten whole.
  Rewrite("seg", full);
  records = 0;
  const Status st = DrainBlockRun("seg", &records);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(records, static_cast<size_t>(kRecords));
}

TEST_F(RunFileTest, VectorStreamIterates) {
  std::vector<std::pair<std::string, std::string>> records = {{"a", "1"},
                                                              {"b", "2"}};
  VectorStream stream(&records);
  EXPECT_TRUE(stream.Valid());
  EXPECT_EQ(stream.key().ToString(), "a");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_EQ(stream.value().ToString(), "2");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_FALSE(stream.Valid());
}

}  // namespace
}  // namespace antimr
