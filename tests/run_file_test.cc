#include "io/run_file.h"

#include <gtest/gtest.h>

namespace antimr {
namespace {

class RunFileTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  void WriteRun(const std::string& fname,
                const std::vector<std::pair<std::string, std::string>>& kvs) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    RunWriter writer(std::move(file));
    for (const auto& [k, v] : kvs) ASSERT_TRUE(writer.Add(k, v).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_F(RunFileTest, RoundTrip) {
  WriteRun("r", {{"a", "1"}, {"b", "2"}, {"c", "3"}});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  std::vector<std::pair<std::string, std::string>> got;
  while (stream->Valid()) {
    got.emplace_back(stream->key().ToString(), stream->value().ToString());
    ASSERT_TRUE(stream->Next().ok());
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(got[2], (std::pair<std::string, std::string>{"c", "3"}));
}

TEST_F(RunFileTest, EmptyRun) {
  WriteRun("r", {});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  EXPECT_FALSE(stream->Valid());
}

TEST_F(RunFileTest, EmptyKeysAndValues) {
  WriteRun("r", {{"", ""}, {"k", ""}, {"", "v"}});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  EXPECT_TRUE(stream->Valid());
  EXPECT_TRUE(stream->key().empty());
  EXPECT_TRUE(stream->value().empty());
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_EQ(stream->key().ToString(), "k");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_EQ(stream->value().ToString(), "v");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_FALSE(stream->Valid());
}

TEST_F(RunFileTest, BinaryPayloads) {
  std::string key("\x00\x01\xff", 3);
  std::string value(300, '\0');
  WriteRun("r", {{key, value}});
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  EXPECT_EQ(stream->key().ToString(), key);
  EXPECT_EQ(stream->value().ToString(), value);
}

TEST_F(RunFileTest, RecordCountTracked) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("r", &file).ok());
  RunWriter writer(std::move(file));
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(writer.Add("k", "v").ok());
  }
  EXPECT_EQ(writer.record_count(), 17u);
  ASSERT_TRUE(writer.Close().ok());
}

TEST_F(RunFileTest, StringRunStreamParsesOwnedBuffer) {
  WriteRun("r", {{"x", "1"}, {"y", "2"}});
  std::string raw;
  ASSERT_TRUE(ReadFileToString(env_.get(), "r", &raw).ok());
  StringRunStream stream(std::move(raw));
  ASSERT_TRUE(stream.Open().ok());
  EXPECT_EQ(stream.key().ToString(), "x");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_EQ(stream.key().ToString(), "y");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_FALSE(stream.Valid());
}

TEST_F(RunFileTest, StringRunStreamRejectsTruncation) {
  WriteRun("r", {{"key", "value"}});
  std::string raw;
  ASSERT_TRUE(ReadFileToString(env_.get(), "r", &raw).ok());
  raw.pop_back();
  StringRunStream stream(std::move(raw));
  EXPECT_TRUE(stream.Open().IsCorruption());
}

TEST_F(RunFileTest, VectorStreamIterates) {
  std::vector<std::pair<std::string, std::string>> records = {{"a", "1"},
                                                              {"b", "2"}};
  VectorStream stream(&records);
  EXPECT_TRUE(stream.Valid());
  EXPECT_EQ(stream.key().ToString(), "a");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_EQ(stream.value().ToString(), "2");
  ASSERT_TRUE(stream.Next().ok());
  EXPECT_FALSE(stream.Valid());
}

}  // namespace
}  // namespace antimr
