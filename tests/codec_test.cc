// Codec round-trip and robustness tests, parameterized over all codecs, plus
// codec-specific ratio/behaviour checks.
#include "codec/codec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace antimr {
namespace {

class CodecRoundTrip : public ::testing::TestWithParam<CodecType> {
 protected:
  void ExpectRoundTrip(const std::string& input) {
    const Codec* codec = GetCodec(GetParam());
    std::string compressed, restored;
    ASSERT_TRUE(codec->Compress(input, &compressed).ok());
    ASSERT_TRUE(codec->Decompress(compressed, &restored).ok())
        << codec->name() << " size=" << input.size();
    EXPECT_EQ(restored, input) << codec->name();
  }
};

TEST_P(CodecRoundTrip, Empty) { ExpectRoundTrip(""); }

TEST_P(CodecRoundTrip, SingleByte) { ExpectRoundTrip("x"); }

TEST_P(CodecRoundTrip, ShortAscii) { ExpectRoundTrip("hello world"); }

TEST_P(CodecRoundTrip, AllSameByte) {
  ExpectRoundTrip(std::string(100000, 'a'));
}

TEST_P(CodecRoundTrip, Periodic) {
  std::string s;
  while (s.size() < 50000) s += "abcabcabz";
  ExpectRoundTrip(s);
}

TEST_P(CodecRoundTrip, RandomBinary) {
  Random rng(1);
  std::string s;
  for (int i = 0; i < 30000; ++i) {
    s.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  ExpectRoundTrip(s);
}

TEST_P(CodecRoundTrip, TextLike) {
  Random rng(2);
  static const char* words[] = {"the", "map", "reduce", "shuffle", "key",
                                "value", "network", "combiner"};
  std::string s;
  while (s.size() < 200000) {
    s += words[rng.Uniform(8)];
    s.push_back(' ');
  }
  ExpectRoundTrip(s);
}

TEST_P(CodecRoundTrip, AllByteValues) {
  std::string s;
  for (int round = 0; round < 300; ++round) {
    for (int b = 0; b < 256; ++b) s.push_back(static_cast<char>(b));
  }
  ExpectRoundTrip(s);
}

TEST_P(CodecRoundTrip, SpansMultipleBwtBlocks) {
  // > 64 KiB forces multiple blocks in the bzip2-like codec.
  Random rng(3);
  std::string s;
  while (s.size() < 200000) {
    s += "record_" + std::to_string(rng.Uniform(500)) + ";";
  }
  ExpectRoundTrip(s);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTrip,
    ::testing::Values(CodecType::kNone, CodecType::kSnappyLike,
                      CodecType::kDeflateLike, CodecType::kGzip,
                      CodecType::kBzip2Like),
    [](const ::testing::TestParamInfo<CodecType>& info) {
      std::string name = CodecTypeName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Codec, RedundantInputCompresses) {
  std::string s;
  while (s.size() < 100000) s += "the same phrase again and again. ";
  for (CodecType type : {CodecType::kSnappyLike, CodecType::kDeflateLike,
                         CodecType::kGzip, CodecType::kBzip2Like}) {
    std::string compressed;
    ASSERT_TRUE(GetCodec(type)->Compress(s, &compressed).ok());
    EXPECT_LT(compressed.size(), s.size() / 4) << CodecTypeName(type);
  }
}

TEST(Codec, DeflateBeatsSnappyOnRatio) {
  Random rng(5);
  static const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  std::string s;
  while (s.size() < 150000) {
    s += words[rng.Uniform(5)];
    s.push_back(' ');
  }
  std::string snappy_out, deflate_out;
  ASSERT_TRUE(
      GetCodec(CodecType::kSnappyLike)->Compress(s, &snappy_out).ok());
  ASSERT_TRUE(
      GetCodec(CodecType::kDeflateLike)->Compress(s, &deflate_out).ok());
  EXPECT_LT(deflate_out.size(), snappy_out.size());
}

TEST(Codec, GzipIsDeflatePlusFraming) {
  const std::string s(5000, 'q');
  std::string gzip_out, deflate_out;
  ASSERT_TRUE(GetCodec(CodecType::kGzip)->Compress(s, &gzip_out).ok());
  ASSERT_TRUE(
      GetCodec(CodecType::kDeflateLike)->Compress(s, &deflate_out).ok());
  EXPECT_EQ(gzip_out.size(), deflate_out.size() + 18);
}

TEST(Codec, GzipDetectsCorruption) {
  const Codec* gzip = GetCodec(CodecType::kGzip);
  std::string compressed;
  ASSERT_TRUE(gzip->Compress(std::string(1000, 'g'), &compressed).ok());
  std::string restored;
  // Flip a payload bit: CRC must catch it (or the LZ decode fails first).
  std::string corrupted = compressed;
  corrupted[12] ^= 0x40;
  EXPECT_FALSE(gzip->Decompress(corrupted, &restored).ok());
  // Bad magic.
  corrupted = compressed;
  corrupted[0] = 'X';
  EXPECT_TRUE(gzip->Decompress(corrupted, &restored).IsCorruption());
  // Truncation.
  EXPECT_TRUE(gzip->Decompress(Slice(compressed.data(), 10), &restored)
                  .IsCorruption());
}

TEST(Codec, LzRejectsTruncatedStream) {
  const Codec* codec = GetCodec(CodecType::kSnappyLike);
  std::string compressed;
  ASSERT_TRUE(codec->Compress(std::string(1000, 'a'), &compressed).ok());
  std::string restored;
  EXPECT_TRUE(
      codec->Decompress(Slice(compressed.data(), compressed.size() / 2),
                        &restored)
          .IsCorruption());
}

TEST(Codec, Bzip2RejectsGarbage) {
  std::string restored;
  EXPECT_FALSE(GetCodec(CodecType::kBzip2Like)
                   ->Decompress(Slice("not a valid stream at all"), &restored)
                   .ok());
}

TEST(Codec, NameLookup) {
  EXPECT_TRUE(CodecTypeFromName("gzip").ok());
  EXPECT_EQ(CodecTypeFromName("gzip").value(), CodecType::kGzip);
  EXPECT_EQ(CodecTypeFromName("none").value(), CodecType::kNone);
  EXPECT_EQ(CodecTypeFromName("snappy").value(), CodecType::kSnappyLike);
  EXPECT_EQ(CodecTypeFromName("deflate").value(), CodecType::kDeflateLike);
  EXPECT_EQ(CodecTypeFromName("bzip2").value(), CodecType::kBzip2Like);
  EXPECT_TRUE(CodecTypeFromName("lzma").status().IsInvalidArgument());
}

}  // namespace
}  // namespace antimr
