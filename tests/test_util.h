// Shared helpers for the test suite.
#ifndef ANTIMR_TESTS_TEST_UTIL_H_
#define ANTIMR_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "antimr.h"

namespace antimr {
namespace testing {

/// Sort records by (key, value) so multiset comparisons are order-free.
inline std::vector<KV> Canonicalize(std::vector<KV> records) {
  std::sort(records.begin(), records.end(), [](const KV& a, const KV& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  });
  return records;
}

/// Run a job and return its flattened output; fails the test on error.
inline std::vector<KV> MustRun(const JobSpec& spec,
                               const std::vector<InputSplit>& splits,
                               JobMetrics* metrics = nullptr) {
  JobResult result;
  Status st = RunJob(spec, splits, &result);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (metrics != nullptr) *metrics = result.metrics;
  return result.FlatOutput();
}

/// Assert that the Anti-Combining-transformed job produces exactly the same
/// output multiset as the original program — the paper's core correctness
/// claim for the syntactic transformation.
inline void ExpectEquivalent(const JobSpec& original,
                             const std::vector<InputSplit>& splits,
                             const anticombine::AntiCombineOptions& options,
                             JobMetrics* original_metrics = nullptr,
                             JobMetrics* anti_metrics = nullptr) {
  const std::vector<KV> expected =
      Canonicalize(MustRun(original, splits, original_metrics));
  const JobSpec transformed =
      anticombine::EnableAntiCombining(original, options);
  const std::vector<KV> actual =
      Canonicalize(MustRun(transformed, splits, anti_metrics));
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].key, actual[i].key) << "at record " << i;
    ASSERT_EQ(expected[i].value, actual[i].value)
        << "at record " << i << " key=" << expected[i].key;
  }
}

}  // namespace testing
}  // namespace antimr

#endif  // ANTIMR_TESTS_TEST_UTIL_H_
