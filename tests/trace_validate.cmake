# ctest script behind the trace_validate test: run a small two-stage
# pipeline (wordcount -> sort) with a trace sink, then validate the trace
# structurally and against the observability acceptance bar (spans from both
# stages, at least one anti-combining instant).
set(TRACE_FILE ${WORK_DIR}/trace_validate.json)

execute_process(
  COMMAND ${ANTIMR_CLI} pipeline --records=2000 --maps=4 --reduces=4
          --trace=${TRACE_FILE}
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "antimr_cli pipeline failed (${run_rc}):\n"
                      "${run_out}\n${run_err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${VALIDATOR} ${TRACE_FILE}
          --expect-stages 2 --expect-anticombine
  RESULT_VARIABLE validate_rc
  OUTPUT_VARIABLE validate_out
  ERROR_VARIABLE validate_err)
message(STATUS "${validate_out}${validate_err}")
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "validate_trace.py rejected ${TRACE_FILE}")
endif()
