#include "workloads/theta_join.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "datagen/cloud.h"
#include "test_util.h"

namespace antimr {
namespace {

using testing::Canonicalize;
using testing::MustRun;
using workloads::MakeThetaJoinJob;
using workloads::ThetaJoinConfig;

// Reference nested-loop join for validation.
std::vector<KV> ReferenceJoin(const std::vector<KV>& input, int band) {
  std::vector<CloudReport> reports;
  for (const KV& kv : input) {
    CloudReport r;
    EXPECT_TRUE(CloudGenerator::ParseReport(kv.value, &r));
    reports.push_back(r);
  }
  std::vector<KV> out;
  for (const CloudReport& s : reports) {
    for (const CloudReport& t : reports) {
      if (s.date == t.date && s.longitude == t.longitude &&
          std::abs(s.latitude - t.latitude) <= band) {
        out.push_back({std::to_string(s.date),
                       std::to_string(s.longitude) + "," +
                           std::to_string(s.latitude) + "," +
                           std::to_string(t.latitude)});
      }
    }
  }
  return out;
}

std::vector<KV> SmallCloud(uint64_t n, uint64_t seed = 42) {
  CloudConfig cfg;
  cfg.num_records = n;
  cfg.num_days = 3;
  cfg.num_longitudes = 4;
  cfg.seed = seed;
  return CloudGenerator(cfg).Generate();
}

TEST(ThetaJoin, MatchesReferenceJoin) {
  const auto input = SmallCloud(120);
  ThetaJoinConfig cfg;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.num_reduce_tasks = 3;
  auto expected = Canonicalize(ReferenceJoin(input, cfg.latitude_band));
  auto actual =
      Canonicalize(MustRun(MakeThetaJoinJob(cfg), MakeSplits(input, 3)));
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].key, actual[i].key);
    EXPECT_EQ(expected[i].value, actual[i].value);
  }
}

TEST(ThetaJoin, EachPairJoinedExactlyOnceAcrossGrids) {
  const auto input = SmallCloud(80, 7);
  auto expected = Canonicalize(ReferenceJoin(input, 10));
  for (auto [rows, cols] : {std::pair{1, 1}, {2, 3}, {5, 5}, {8, 2}}) {
    ThetaJoinConfig cfg;
    cfg.grid_rows = rows;
    cfg.grid_cols = cols;
    cfg.num_reduce_tasks = 4;
    auto actual =
        Canonicalize(MustRun(MakeThetaJoinJob(cfg), MakeSplits(input, 2)));
    EXPECT_EQ(expected.size(), actual.size())
        << "grid " << rows << "x" << cols;
  }
}

TEST(ThetaJoin, ReplicationFactorIsRowsPlusCols) {
  const auto input = SmallCloud(100);
  ThetaJoinConfig cfg;
  cfg.grid_rows = 6;
  cfg.grid_cols = 4;
  cfg.num_reduce_tasks = 4;
  JobMetrics m;
  MustRun(MakeThetaJoinJob(cfg), MakeSplits(input, 2), &m);
  EXPECT_EQ(m.map_output_records,
            m.input_records * static_cast<uint64_t>(cfg.grid_rows +
                                                    cfg.grid_cols));
}

TEST(ThetaJoin, AntiCombiningEquivalence) {
  const auto input = SmallCloud(100);
  ThetaJoinConfig cfg;
  cfg.grid_rows = 4;
  cfg.grid_cols = 4;
  cfg.num_reduce_tasks = 3;
  testing::ExpectEquivalent(MakeThetaJoinJob(cfg), MakeSplits(input, 3),
                            anticombine::AntiCombineOptions());
}

TEST(ThetaJoin, AntiCombiningPicksLazyAndShrinksOutput) {
  const auto input = SmallCloud(200);
  ThetaJoinConfig cfg;
  cfg.grid_rows = 6;
  cfg.grid_cols = 6;
  cfg.num_reduce_tasks = 4;
  JobMetrics orig_m, anti_m;
  testing::ExpectEquivalent(MakeThetaJoinJob(cfg), MakeSplits(input, 2),
                            anticombine::AntiCombineOptions(), &orig_m,
                            &anti_m);
  // The paper's Section 7.7.3: AdaptiveSH chose LazySH for all records and
  // cut map output ~9.5x.
  EXPECT_GT(anti_m.lazy_records, 0u);
  EXPECT_EQ(anti_m.eager_records, 0u);
  EXPECT_LT(anti_m.emitted_bytes * 2, orig_m.emitted_bytes);
}

TEST(ThetaJoin, BandPredicateHonored) {
  const auto input = SmallCloud(150);
  ThetaJoinConfig cfg;
  cfg.latitude_band = 0;  // strict equality on latitude
  cfg.grid_rows = 3;
  cfg.grid_cols = 3;
  cfg.num_reduce_tasks = 2;
  auto out = MustRun(MakeThetaJoinJob(cfg), MakeSplits(input, 2));
  for (const KV& kv : out) {
    // value = "lon,latS,latT" -> latS must equal latT
    const size_t c1 = kv.value.find(',');
    const size_t c2 = kv.value.find(',', c1 + 1);
    EXPECT_EQ(kv.value.substr(c1 + 1, c2 - c1 - 1),
              kv.value.substr(c2 + 1));
  }
  auto expected = ReferenceJoin(input, 0);
  EXPECT_EQ(out.size(), expected.size());
}

TEST(ThetaJoin, SizeGridForMemory) {
  int rows, cols;
  workloads::SizeGridForMemory(1000, 100, &rows, &cols);
  EXPECT_EQ(rows, cols);
  EXPECT_EQ(rows, 20);  // 2*1000/100
  workloads::SizeGridForMemory(10, 1000, &rows, &cols);
  EXPECT_EQ(rows, 1);
  workloads::SizeGridForMemory(0, 0, &rows, &cols);
  EXPECT_GE(rows, 1);
}

}  // namespace
}  // namespace antimr
