#include "io/throttled_env.h"

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace antimr {
namespace {

TEST(ThrottledEnv, ForwardsDataFaithfully) {
  auto base = NewMemEnv();
  auto env = NewThrottledEnv(base.get(), /*disk_mb_per_s=*/1000.0);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile("f", &w).ok());
  ASSERT_TRUE(w->Append("hello throttle").ok());
  ASSERT_TRUE(w->Close().ok());

  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(env->NewSequentialFile("f", &r).ok());
  char scratch[64];
  Slice chunk;
  ASSERT_TRUE(r->Read(sizeof(scratch), &chunk, scratch).ok());
  EXPECT_EQ(chunk.ToString(), "hello throttle");

  // Stats flow through to the base env.
  EXPECT_EQ(env->stats().bytes_written, 14u);
  EXPECT_EQ(base->stats().bytes_written, 14u);
  EXPECT_TRUE(env->FileExists("f"));
  ASSERT_TRUE(env->DeleteFile("f").ok());
  EXPECT_FALSE(base->FileExists("f"));
}

TEST(ThrottledEnv, WritesTakeSimulatedTime) {
  auto base = NewMemEnv();
  // 1 MB/s: a 256 KiB write should take ~250 ms.
  auto env = NewThrottledEnv(base.get(), 1.0);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile("f", &w).ok());
  const std::string data(256 * 1024, 'x');
  const uint64_t start = NowNanos();
  ASSERT_TRUE(w->Append(data).ok());
  const uint64_t elapsed = NowNanos() - start;
  EXPECT_GE(elapsed, 150'000'000u) << "throttle too weak";
}

TEST(ThrottledEnv, ReadsTakeSimulatedTime) {
  auto base = NewMemEnv();
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(base->NewWritableFile("f", &w).ok());
    ASSERT_TRUE(w->Append(std::string(256 * 1024, 'y')).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  auto env = NewThrottledEnv(base.get(), 1.0);
  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(env->NewSequentialFile("f", &r).ok());
  std::vector<char> scratch(1 << 20);
  Slice chunk;
  const uint64_t start = NowNanos();
  uint64_t total = 0;
  while (true) {
    ASSERT_TRUE(r->Read(scratch.size(), &chunk, scratch.data()).ok());
    if (chunk.empty()) break;
    total += chunk.size();
  }
  EXPECT_EQ(total, 256u * 1024);
  EXPECT_GE(NowNanos() - start, 150'000'000u);
}

// Regression: byte charges are batched into ~64 KiB quanta, so N tiny reads
// cost the same simulated time as one large read over the same bytes. The
// old per-op accounting slept once per Read; each sleep_for() has a
// scheduler-granularity floor, so 2048 tiny reads paid 2048 floors (hundreds
// of ms of real time) for microseconds of simulated time.
TEST(ThrottledEnv, TinyReadsChargeOncePerQuantum) {
  auto base = NewMemEnv();
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(base->NewWritableFile("f", &w).ok());
    ASSERT_TRUE(w->Append(std::string(16 * 1024, 'z')).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  // 1000 MB/s: 16 KiB is ~16 us of simulated time. 2048 8-byte reads must
  // not each pay a separate sleep.
  auto env = NewThrottledEnv(base.get(), 1000.0);
  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(env->NewSequentialFile("f", &r).ok());
  char scratch[8];
  Slice chunk;
  const uint64_t start = NowNanos();
  uint64_t total = 0;
  for (int i = 0; i < 2048; ++i) {
    ASSERT_TRUE(r->Read(sizeof(scratch), &chunk, scratch).ok());
    total += chunk.size();
  }
  EXPECT_EQ(total, 16u * 1024);
  EXPECT_LT(NowNanos() - start, 150'000'000u)
      << "tiny reads are being throttled per-op, not per-quantum";
}

// The accumulator must not drop bytes: small ops that together cross the
// quantum still pay the full simulated time for their total.
TEST(ThrottledEnv, SmallWritesStillPayTotalBytes) {
  auto base = NewMemEnv();
  // 1 MB/s: 256 KiB in 4 KiB appends should take ~250 ms in total.
  auto env = NewThrottledEnv(base.get(), 1.0);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile("f", &w).ok());
  const std::string data(4 * 1024, 'x');
  const uint64_t start = NowNanos();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(w->Append(data).ok());
  }
  ASSERT_TRUE(w->Close().ok());
  EXPECT_GE(NowNanos() - start, 150'000'000u) << "accumulator dropped bytes";
}

TEST(SleepForBytes, ZeroRateIsNoOp) {
  const uint64_t start = NowNanos();
  SleepForBytes(100 * 1024 * 1024, 0.0);
  SleepForBytes(0, 100.0);
  EXPECT_LT(NowNanos() - start, 50'000'000u);
}

}  // namespace
}  // namespace antimr
