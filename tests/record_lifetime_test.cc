// Lifetime tests for the zero-copy record path. Each test exercises the
// documented validity window of a view-returning API — "valid until the
// next Next()/Clear()" — with the contract-compliant access pattern, so an
// ASan build (ctest -L tier2-asan on a -DANTIMR_SANITIZE=address,undefined
// build) catches any implementation that frees or recycles the backing
// bytes early. The tests also pin down what the contract does NOT promise:
// consumers that need a record beyond the window must copy it first.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "io/run_file.h"
#include "mr/map_output_buffer.h"

namespace antimr {
namespace {

std::vector<std::pair<std::string, std::string>> MakeRecords(int n,
                                                             size_t val_len) {
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.reserve(n);
  for (int i = 0; i < n; ++i) {
    char pad = static_cast<char>('a' + i % 26);
    kvs.emplace_back("key" + std::to_string(1000 + i),
                     std::string(val_len, pad) + std::to_string(i));
  }
  return kvs;
}

class RecordLifetimeTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  void WriteRun(const std::string& fname,
                const std::vector<std::pair<std::string, std::string>>& kvs) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    RunWriter writer(std::move(file));
    for (const auto& [k, v] : kvs) ASSERT_TRUE(writer.Add(k, v).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  void WriteBlockRun(const std::string& fname, size_t block_bytes,
                     const std::vector<std::pair<std::string, std::string>>& kvs,
                     uint64_t* blocks_out = nullptr) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    BlockRunWriter::Options wopts;
    wopts.block_bytes = block_bytes;
    BlockRunWriter writer(std::move(file), GetCodec(CodecType::kNone), wopts);
    for (const auto& [k, v] : kvs) ASSERT_TRUE(writer.Add(k, v).ok());
    ASSERT_TRUE(writer.Finish().ok());
    if (blocks_out != nullptr) *blocks_out = writer.block_count();
  }

  std::unique_ptr<Env> env_;
};

// Both views of one record come from the same buffer generation: reading
// the value (which may refill/compact the reader's buffer internally) must
// never invalidate the key of the same record. Touch both views repeatedly
// before advancing.
TEST_F(RecordLifetimeTest, RunReaderRecordViewsCoherentUntilNext) {
  // Values big enough that only a handful of records fit per refill.
  const auto kvs = MakeRecords(200, 300);
  WriteRun("r", kvs);
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  size_t i = 0;
  while (stream->Valid()) {
    const Slice key = stream->key();
    const Slice value = stream->value();
    // Use both views (twice) within the window; ASan flags any early reuse.
    ASSERT_EQ(key.ToString(), kvs[i].first);
    ASSERT_EQ(value.ToString(), kvs[i].second);
    EXPECT_EQ(key.ToString(), stream->key().ToString());
    EXPECT_EQ(value.ToString(), stream->value().ToString());
    ASSERT_TRUE(stream->Next().ok());
    ++i;
  }
  EXPECT_EQ(i, kvs.size());
}

// A record larger than the reader's internal buffer exercises the
// grow-and-retry slow path; the views must still be coherent.
TEST_F(RecordLifetimeTest, RunReaderViewsSurviveOversizedRecords) {
  std::vector<std::pair<std::string, std::string>> kvs = {
      {"small", "v"},
      {std::string(70 * 1024, 'K'), std::string(200 * 1024, 'V')},
      {"tail", std::string(90 * 1024, 't')},
  };
  WriteRun("r", kvs);
  std::unique_ptr<KVStream> stream;
  ASSERT_TRUE(OpenRun(env_.get(), "r", &stream).ok());
  for (const auto& [k, v] : kvs) {
    ASSERT_TRUE(stream->Valid());
    EXPECT_EQ(stream->key().ToString(), k);
    EXPECT_EQ(stream->value().ToString(), v);
    ASSERT_TRUE(stream->Next().ok());
  }
  EXPECT_FALSE(stream->Valid());
}

// BlockRunReader views stay valid exactly until the next Next() — including
// for the final record of a block, where the following Next() decodes a new
// block into the same backing buffer. Copy-before-advance must round-trip
// every record across many block boundaries.
TEST_F(RecordLifetimeTest, BlockRunReaderViewsValidUntilBlockAdvance) {
  const auto kvs = MakeRecords(300, 40);
  uint64_t blocks = 0;
  WriteBlockRun("seg", /*block_bytes=*/256, kvs, &blocks);
  ASSERT_GT(blocks, 10u) << "test needs many block advances";

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile("seg", &file).ok());
  BlockRunReader::Options ropts;
  ropts.name = "seg";
  BlockRunReader reader(std::move(file), GetCodec(CodecType::kNone), ropts);
  ASSERT_TRUE(reader.Open().ok());
  size_t i = 0;
  while (reader.Valid()) {
    const Slice key = reader.key();
    const Slice value = reader.value();
    ASSERT_EQ(key.ToString(), kvs[i].first) << "record " << i;
    ASSERT_EQ(value.ToString(), kvs[i].second) << "record " << i;
    // Re-read through the accessors after touching the views: both must
    // still point at live bytes of the current block.
    EXPECT_EQ(reader.key().data(), key.data());
    EXPECT_EQ(reader.value().data(), value.data());
    ASSERT_TRUE(reader.Next().ok());
    ++i;
  }
  EXPECT_EQ(i, kvs.size());
  EXPECT_EQ(reader.stats().records, kvs.size());
}

// The map-attempt scrub point: a retried attempt calls Clear() and must
// start from an empty (but warm) arena — no record, view, or byte from the
// failed attempt may leak into the retry's output.
TEST_F(RecordLifetimeTest, MapOutputBufferClearScrubsFailedAttempt) {
  MapOutputBuffer buffer(2, BytewiseCompare);
  // Failed attempt: buffer some records, start sorting, then die.
  for (int i = 0; i < 100; ++i) {
    buffer.Add(i % 2, "stale" + std::to_string(i), std::string(50, 'x'));
  }
  buffer.Sort();
  ASSERT_GT(buffer.arena_bytes_used(), 0u);

  buffer.Clear();
  EXPECT_EQ(buffer.arena_bytes_used(), 0u);
  EXPECT_EQ(buffer.record_count(), 0u);
  EXPECT_EQ(buffer.memory_usage(), 0u);

  // Retry: different records, reusing the same (retained) arena chunks.
  buffer.Add(0, "fresh-b", "2");
  buffer.Add(0, "fresh-a", "1");
  buffer.Sort();
  EXPECT_EQ(buffer.PartitionRecords(0), 2u);
  EXPECT_EQ(buffer.PartitionRecords(1), 0u);
  auto stream = buffer.PartitionStream(0);
  ASSERT_TRUE(stream->Valid());
  EXPECT_EQ(stream->key().ToString(), "fresh-a");
  EXPECT_EQ(stream->value().ToString(), "1");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_EQ(stream->key().ToString(), "fresh-b");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_FALSE(stream->Valid());
}

// Views handed out by PartitionStream stay pinned across arbitrary arena
// growth: interning thousands more records must never relocate bytes a
// previously collected view points at (chunked storage, not realloc).
TEST_F(RecordLifetimeTest, MapOutputBufferViewsStableAcrossGrowth) {
  MapOutputBuffer buffer(1, BytewiseCompare);
  const auto kvs = MakeRecords(2000, 60);  // spans many 64 KiB chunks
  for (const auto& [k, v] : kvs) buffer.Add(0, k, v);
  buffer.Sort();
  auto stream = buffer.PartitionStream(0);
  std::vector<Slice> keys;
  std::vector<Slice> values;
  while (stream->Valid()) {
    keys.push_back(stream->key());
    values.push_back(stream->value());
    ASSERT_TRUE(stream->Next().ok());
  }
  ASSERT_EQ(keys.size(), kvs.size());
  // MakeRecords keys are generated in sorted order already.
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i].ToString(), kvs[i].first);
    EXPECT_EQ(values[i].ToString(), kvs[i].second);
  }
}

}  // namespace
}  // namespace antimr
