#include "codec/crc32.h"

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 test vectors.
  EXPECT_EQ(Crc32(0, Slice("")), 0x00000000u);
  EXPECT_EQ(Crc32(0, Slice("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(0, Slice("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(100, 'a');
  const uint32_t clean = Crc32(0, data);
  data[50] ^= 1;
  EXPECT_NE(Crc32(0, data), clean);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "hello incremental crc world";
  const uint32_t oneshot = Crc32(0, data);
  uint32_t running = 0;
  // Continuation uses the previous CRC as seed.
  running = Crc32(running, Slice(data.data(), 10));
  running = Crc32(running, Slice(data.data() + 10, data.size() - 10));
  EXPECT_EQ(running, oneshot);
}

}  // namespace
}  // namespace antimr
