#include "common/coding.h"

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Coding, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 65536u, 0xdeadbeefu, UINT32_MAX}) {
    std::string buf;
    PutFixed32(&buf, v);
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(DecodeFixed32(buf.data()), v);
    Slice in(buf);
    uint32_t decoded;
    ASSERT_TRUE(GetFixed32(&in, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(Coding, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40,
                     UINT64_MAX}) {
    std::string buf;
    PutFixed64(&buf, v);
    ASSERT_EQ(buf.size(), 8u);
    EXPECT_EQ(DecodeFixed64(buf.data()), v);
  }
}

TEST(Coding, Varint32RoundTrip) {
  std::string buf;
  std::vector<uint32_t> values;
  for (uint32_t shift = 0; shift < 32; ++shift) {
    values.push_back(1u << shift);
    values.push_back((1u << shift) - 1);
  }
  values.push_back(UINT32_MAX);
  for (uint32_t v : values) PutVarint32(&buf, v);
  Slice in(buf);
  for (uint32_t v : values) {
    uint32_t decoded;
    ASSERT_TRUE(GetVarint32(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(Coding, Varint64RoundTrip) {
  std::string buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384};
  for (int shift = 0; shift < 64; ++shift) values.push_back(1ULL << shift);
  values.push_back(UINT64_MAX);
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(Coding, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 35, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
  }
}

TEST(Coding, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
    EXPECT_EQ(in.size(), cut) << "failed parse must not consume";
  }
}

TEST(Coding, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(Coding, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  std::string big(1000, 'x');
  PutLengthPrefixed(&buf, big);
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.ToString(), big);
  EXPECT_TRUE(in.empty());
}

TEST(Coding, LengthPrefixedTruncatedFails) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  Slice in(buf.data(), buf.size() - 1);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(Coding, ZigZag) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-1000000},
                    INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes encode small.
  EXPECT_LE(ZigZagEncode(-2), 4u);
  EXPECT_LE(ZigZagEncode(2), 4u);
}

}  // namespace
}  // namespace antimr
