#include "mr/map_output_buffer.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(MapOutputBuffer, EmptyBuffer) {
  MapOutputBuffer buffer(3, BytewiseCompare);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.record_count(), 0u);
  buffer.Sort();
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(buffer.PartitionRecords(p), 0u);
    EXPECT_FALSE(buffer.PartitionStream(p)->Valid());
  }
}

TEST(MapOutputBuffer, SortsWithinPartition) {
  MapOutputBuffer buffer(2, BytewiseCompare);
  buffer.Add(0, "c", "3");
  buffer.Add(1, "z", "z1");
  buffer.Add(0, "a", "1");
  buffer.Add(0, "b", "2");
  buffer.Add(1, "y", "y1");
  buffer.Sort();
  auto s0 = buffer.PartitionStream(0);
  std::string keys;
  while (s0->Valid()) {
    keys += s0->key().ToString();
    ASSERT_TRUE(s0->Next().ok());
  }
  EXPECT_EQ(keys, "abc");
  EXPECT_EQ(buffer.PartitionRecords(0), 3u);
  EXPECT_EQ(buffer.PartitionRecords(1), 2u);
}

TEST(MapOutputBuffer, StableForEqualKeys) {
  MapOutputBuffer buffer(1, BytewiseCompare);
  buffer.Add(0, "k", "first");
  buffer.Add(0, "k", "second");
  buffer.Add(0, "k", "third");
  buffer.Sort();
  auto stream = buffer.PartitionStream(0);
  EXPECT_EQ(stream->value().ToString(), "first");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_EQ(stream->value().ToString(), "second");
  ASSERT_TRUE(stream->Next().ok());
  EXPECT_EQ(stream->value().ToString(), "third");
}

TEST(MapOutputBuffer, MemoryUsageGrowsAndClears) {
  MapOutputBuffer buffer(1, BytewiseCompare);
  EXPECT_EQ(buffer.memory_usage(), 0u);
  buffer.Add(0, "0123456789", "0123456789");
  EXPECT_GE(buffer.memory_usage(), 20u);
  buffer.Clear();
  EXPECT_EQ(buffer.memory_usage(), 0u);
  EXPECT_TRUE(buffer.empty());
}

TEST(MapOutputBuffer, ReusableAfterClear) {
  MapOutputBuffer buffer(2, BytewiseCompare);
  buffer.Add(0, "a", "1");
  buffer.Sort();
  buffer.Clear();
  buffer.Add(1, "b", "2");
  buffer.Sort();
  EXPECT_EQ(buffer.PartitionRecords(0), 0u);
  EXPECT_EQ(buffer.PartitionRecords(1), 1u);
  auto stream = buffer.PartitionStream(1);
  EXPECT_EQ(stream->key().ToString(), "b");
}

TEST(MapOutputBuffer, CustomComparator) {
  auto reverse = [](const Slice& a, const Slice& b) { return b.compare(a); };
  MapOutputBuffer buffer(1, reverse);
  buffer.Add(0, "a", "");
  buffer.Add(0, "c", "");
  buffer.Add(0, "b", "");
  buffer.Sort();
  auto stream = buffer.PartitionStream(0);
  std::string keys;
  while (stream->Valid()) {
    keys += stream->key().ToString();
    ASSERT_TRUE(stream->Next().ok());
  }
  EXPECT_EQ(keys, "cba");
}

TEST(MapOutputBuffer, SparsePartitions) {
  MapOutputBuffer buffer(10, BytewiseCompare);
  buffer.Add(7, "k7", "v");
  buffer.Add(2, "k2", "v");
  buffer.Sort();
  for (int p = 0; p < 10; ++p) {
    EXPECT_EQ(buffer.PartitionRecords(p), (p == 2 || p == 7) ? 1u : 0u);
  }
}

// AddBatch must be byte-equivalent to record-wise Add: same partition
// contents, same sort, same stability for equal keys (batch order = Add
// order). The batch references caller storage; the buffer must intern.
TEST(MapOutputBuffer, AddBatchMatchesRecordWiseAdd) {
  const std::vector<std::pair<std::string, std::string>> records = {
      {"c", "3"}, {"a", "1"}, {"a", "1b"}, {"b", "2"}, {"z", "26"}};
  const std::vector<int> partitions = {0, 1, 0, 1, 0};

  MapOutputBuffer record_wise(2, BytewiseCompare);
  for (size_t i = 0; i < records.size(); ++i) {
    record_wise.Add(partitions[i], records[i].first, records[i].second);
  }
  record_wise.Sort();

  MapOutputBuffer batched(2, BytewiseCompare);
  {
    // Batch storage is scoped: after AddBatch returns, the buffer must not
    // reference it.
    std::vector<std::pair<std::string, std::string>> storage = records;
    RecordBatch batch;
    for (const auto& [k, v] : storage) batch.emplace_back(Slice(k), Slice(v));
    batched.AddBatch(batch, partitions);
    for (auto& [k, v] : storage) {
      k.assign(k.size(), '?');
      v.assign(v.size(), '?');
    }
    batched.Sort();
  }

  EXPECT_EQ(batched.record_count(), record_wise.record_count());
  for (int p = 0; p < 2; ++p) {
    ASSERT_EQ(batched.PartitionRecords(p), record_wise.PartitionRecords(p));
    auto want = record_wise.PartitionStream(p);
    auto got = batched.PartitionStream(p);
    while (want->Valid()) {
      ASSERT_TRUE(got->Valid());
      EXPECT_EQ(got->key().ToString(), want->key().ToString());
      EXPECT_EQ(got->value().ToString(), want->value().ToString());
      ASSERT_TRUE(want->Next().ok());
      ASSERT_TRUE(got->Next().ok());
    }
    EXPECT_FALSE(got->Valid());
  }
}

// The partition streams a sorted buffer serves support eager batches; the
// batched view must equal the record-wise walk.
TEST(MapOutputBuffer, PartitionStreamBatchesMatch) {
  MapOutputBuffer buffer(1, BytewiseCompare);
  for (int i = 0; i < 100; ++i) {
    buffer.Add(0, "k" + std::to_string(i % 10), "v" + std::to_string(i));
  }
  buffer.Sort();

  std::vector<std::pair<std::string, std::string>> want;
  auto record_stream = buffer.PartitionStream(0);
  while (record_stream->Valid()) {
    want.emplace_back(record_stream->key().ToString(),
                      record_stream->value().ToString());
    ASSERT_TRUE(record_stream->Next().ok());
  }

  auto batch_stream = buffer.PartitionStream(0);
  ASSERT_TRUE(batch_stream->SupportsEagerBatches());
  std::vector<std::pair<std::string, std::string>> got;
  RecordBatch batch;
  BatchOptions opts;
  opts.max_records = 17;
  while (true) {
    ASSERT_TRUE(batch_stream->NextBatch(&batch, opts).ok());
    if (batch.empty()) break;
    for (const RecordRef& r : batch) {
      got.emplace_back(r.key.ToString(), r.value.ToString());
    }
  }
  EXPECT_EQ(got, want);
}

TEST(MapOutputBuffer, BinarySafePayloads) {
  MapOutputBuffer buffer(1, BytewiseCompare);
  const std::string key("\x00\xff\x00", 3);
  const std::string value(1000, '\0');
  buffer.Add(0, key, value);
  buffer.Sort();
  auto stream = buffer.PartitionStream(0);
  EXPECT_EQ(stream->key().ToString(), key);
  EXPECT_EQ(stream->value().ToString(), value);
}

}  // namespace
}  // namespace antimr
