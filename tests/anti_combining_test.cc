// The core correctness property of the paper: enabling Anti-Combining on ANY
// MapReduce program — any threshold T, Combiner flag C, codec, buffer size,
// parallelism, or grouping comparator — must not change the program's output.
// Plus targeted tests of the encoding decisions and metrics.
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "datagen/qlog.h"
#include "datagen/random_text.h"
#include "test_util.h"
#include "workloads/query_suggestion.h"
#include "workloads/sort.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace {

using anticombine::AntiCombineOptions;
using anticombine::EnableAntiCombining;
using testing::Canonicalize;
using testing::ExpectEquivalent;
using testing::MustRun;

// ---------------------------------------------------------------------------
// A configurable synthetic program for property sweeps: Map's fan-out, key
// spread, and value sharing are all tunable, and Reduce is a deterministic
// order-insensitive digest, so equivalence checks are exact.

struct SyntheticShape {
  int fan_out;          // output records per input record
  int key_spread;       // distinct keys ~ key_spread
  bool shared_values;   // all outputs of one Map call share one value
  bool with_combiner;
};

class SyntheticMapper : public Mapper {
 public:
  explicit SyntheticMapper(SyntheticShape shape) : shape_(shape) {}

  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    const uint64_t h = Hash64(key) ^ Hash64(value);
    for (int i = 0; i < shape_.fan_out; ++i) {
      const uint64_t k = (h + static_cast<uint64_t>(i) * 7919) %
                         static_cast<uint64_t>(shape_.key_spread);
      const std::string out_key = "k" + std::to_string(k);
      const std::string out_value =
          shape_.shared_values
              ? "v" + std::to_string(h % 1000)
              : "v" + std::to_string(h % 1000) + "_" + std::to_string(i);
      ctx->Emit(out_key, out_value);
    }
  }

 private:
  SyntheticShape shape_;
};

// Order-insensitive digest: XOR of value hashes plus a count.
class DigestReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t digest = 0;
    uint64_t count = 0;
    Slice v;
    while (values->Next(&v)) {
      digest ^= HashMix64(Hash64(v));
      ++count;
    }
    ctx->Emit(key, std::to_string(count) + ":" + std::to_string(digest));
  }
};

// A combiner compatible with DigestReducer: re-emits every value unchanged
// except identical values are deduplicated into (value, multiplicity)? No —
// DigestReducer is XOR-based, so a safe combiner must preserve the value
// multiset. This combiner just forwards values (a legal no-op combiner),
// which still exercises the AntiCombiner decode/re-encode path.
class ForwardingCombiner : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    Slice v;
    while (values->Next(&v)) ctx->Emit(key, v);
  }
};

JobSpec SyntheticJob(const SyntheticShape& shape, int reduce_tasks) {
  JobSpec spec;
  spec.name = "synthetic";
  spec.mapper_factory = [shape]() {
    return std::make_unique<SyntheticMapper>(shape);
  };
  spec.reducer_factory = []() { return std::make_unique<DigestReducer>(); };
  if (shape.with_combiner) {
    spec.combiner_factory = []() {
      return std::make_unique<ForwardingCombiner>();
    };
  }
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

std::vector<KV> SyntheticInput(int n, uint64_t seed) {
  Random rng(seed);
  std::vector<KV> input;
  input.reserve(n);
  for (int i = 0; i < n; ++i) {
    input.push_back({"in" + std::to_string(rng.Uniform(100000)),
                     "payload" + std::to_string(rng.Uniform(1000))});
  }
  return input;
}

// ---------------------------------------------------------------------------
// Parameterized equivalence sweep.

struct SweepParam {
  SyntheticShape shape;
  int reduce_tasks;
  int map_tasks;
  uint64_t threshold;
  bool map_phase_combiner;
  size_t map_buffer;
  CodecType codec;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EquivalenceSweep, TransformedOutputMatchesOriginal) {
  const SweepParam& p = GetParam();
  JobSpec original = SyntheticJob(p.shape, p.reduce_tasks);
  original.map_buffer_bytes = p.map_buffer;
  original.map_output_codec = p.codec;
  AntiCombineOptions options;
  options.lazy_threshold_nanos = p.threshold;
  options.map_phase_combiner = p.map_phase_combiner;
  auto input = SyntheticInput(600, /*seed=*/7);
  ExpectEquivalent(original, MakeSplits(std::move(input), p.map_tasks),
                   options);
}

constexpr uint64_t kInf = AntiCombineOptions::kInfiniteT;

INSTANTIATE_TEST_SUITE_P(
    Shapes, EquivalenceSweep,
    ::testing::Values(
        // fan-out 1 (sort-like): the degenerate overhead case
        SweepParam{{1, 1000, false, false}, 4, 3, kInf, true,
                   1 << 20, CodecType::kNone},
        // wide fan-out with shared values: EagerSH territory
        SweepParam{{8, 50, true, false}, 4, 3, kInf, true, 1 << 20,
                   CodecType::kNone},
        // wide fan-out with distinct values: LazySH territory
        SweepParam{{8, 50, false, false}, 4, 3, kInf, true, 1 << 20,
                   CodecType::kNone},
        // eager-only (T = 0)
        SweepParam{{8, 50, false, false}, 4, 3, 0, true, 1 << 20,
                   CodecType::kNone},
        // single reduce task: everything shares a partition
        SweepParam{{6, 30, true, false}, 1, 2, kInf, true, 1 << 20,
                   CodecType::kNone},
        // many reduce tasks: little co-partitioning
        SweepParam{{6, 1000, true, false}, 16, 4, kInf, true, 1 << 20,
                   CodecType::kNone},
        // tiny map buffer: spills everywhere
        SweepParam{{8, 50, true, false}, 4, 3, kInf, true, 8 * 1024,
                   CodecType::kNone},
        // with combiner, map-phase combining on (C = 1)
        SweepParam{{8, 50, true, true}, 4, 3, kInf, true, 1 << 20,
                   CodecType::kNone},
        // with combiner, map-phase combining off (C = 0)
        SweepParam{{8, 50, true, true}, 4, 3, kInf, false, 1 << 20,
                   CodecType::kNone},
        // with combiner + spills: combiner applied per spill
        SweepParam{{8, 50, true, true}, 4, 3, kInf, true, 8 * 1024,
                   CodecType::kNone},
        // compression stacked on top of Anti-Combining
        SweepParam{{8, 50, true, false}, 4, 3, kInf, true, 1 << 20,
                   CodecType::kGzip},
        SweepParam{{8, 50, false, false}, 4, 3, kInf, true, 1 << 20,
                   CodecType::kSnappyLike}));

// ---------------------------------------------------------------------------
// Equivalence on the real workloads.

TEST(AntiCombining, QuerySuggestionEquivalence) {
  QLogConfig qc;
  qc.num_records = 2000;
  qc.num_distinct = 500;
  QLogGenerator gen(qc);
  for (auto scheme : {workloads::QuerySuggestionConfig::Scheme::kHash,
                      workloads::QuerySuggestionConfig::Scheme::kPrefix1,
                      workloads::QuerySuggestionConfig::Scheme::kPrefix5}) {
    workloads::QuerySuggestionConfig cfg;
    cfg.scheme = scheme;
    cfg.num_reduce_tasks = 4;
    ExpectEquivalent(workloads::MakeQuerySuggestionJob(cfg),
                     gen.MakeSplits(3), AntiCombineOptions());
  }
}

TEST(AntiCombining, QuerySuggestionWithCombinerEquivalence) {
  QLogConfig qc;
  qc.num_records = 1500;
  qc.num_distinct = 300;
  QLogGenerator gen(qc);
  workloads::QuerySuggestionConfig cfg;
  cfg.with_combiner = true;
  cfg.num_reduce_tasks = 4;
  for (bool c_flag : {true, false}) {
    AntiCombineOptions options;
    options.map_phase_combiner = c_flag;
    ExpectEquivalent(workloads::MakeQuerySuggestionJob(cfg),
                     gen.MakeSplits(3), options);
  }
}

TEST(AntiCombining, WordCountEquivalence) {
  RandomTextConfig rc;
  rc.num_lines = 400;
  rc.vocabulary_words = 80;
  RandomTextGenerator gen(rc);
  workloads::WordCountConfig wc;
  wc.num_reduce_tasks = 4;
  ExpectEquivalent(workloads::MakeWordCountJob(wc), gen.MakeSplits(3),
                   AntiCombineOptions());
}

// ---------------------------------------------------------------------------
// Behavioural checks on the adaptive decisions.

TEST(AntiCombining, SharedValuesChooseEagerAtThresholdZero) {
  JobSpec original = SyntheticJob({8, 50, true, false}, 4);
  JobSpec transformed =
      EnableAntiCombining(original, AntiCombineOptions::EagerOnly());
  JobMetrics m;
  MustRun(transformed, MakeSplits(SyntheticInput(300, 3), 2), &m);
  EXPECT_EQ(m.lazy_records, 0u) << "T = 0 must forbid LazySH";
  EXPECT_GT(m.eager_records, 0u);
}

TEST(AntiCombining, DistinctValuesChooseLazyWhenUnrestricted) {
  JobSpec original = SyntheticJob({8, 50, false, false}, 2);
  JobSpec transformed =
      EnableAntiCombining(original, AntiCombineOptions::Unrestricted());
  JobMetrics m;
  MustRun(transformed, MakeSplits(SyntheticInput(300, 3), 2), &m);
  EXPECT_GT(m.lazy_records, 0u)
      << "distinct values in a wide fan-out should pick LazySH";
}

TEST(AntiCombining, NonDeterministicJobDisablesLazy) {
  JobSpec original = SyntheticJob({8, 50, false, false}, 2);
  original.deterministic = false;
  JobSpec transformed =
      EnableAntiCombining(original, AntiCombineOptions::Unrestricted());
  JobMetrics m;
  MustRun(transformed, MakeSplits(SyntheticInput(300, 3), 2), &m);
  EXPECT_EQ(m.lazy_records, 0u);
  EXPECT_EQ(m.remap_calls, 0u);
}

TEST(AntiCombining, FanOutOneDegeneratesToFlaggedPlain) {
  JobSpec original = SyntheticJob({1, 100000, false, false}, 4);
  JobSpec transformed =
      EnableAntiCombining(original, AntiCombineOptions::Unrestricted());
  JobMetrics orig_m, anti_m;
  ExpectEquivalent(original, MakeSplits(SyntheticInput(500, 5), 2),
                   AntiCombineOptions::Unrestricted(), &orig_m, &anti_m);
  EXPECT_EQ(anti_m.eager_records, 0u);
  EXPECT_EQ(anti_m.lazy_records, 0u);
  EXPECT_EQ(anti_m.plain_records, anti_m.emitted_records);
  // Overhead is the 2-byte flag+count per record, nothing more.
  EXPECT_EQ(anti_m.emitted_bytes,
            orig_m.emitted_bytes + 2 * orig_m.emitted_records);
}

TEST(AntiCombining, EagerReducesEmittedBytesWhenValuesShared) {
  JobSpec original = SyntheticJob({16, 20, true, false}, 2);
  JobMetrics orig_m, anti_m;
  ExpectEquivalent(original, MakeSplits(SyntheticInput(400, 11), 2),
                   AntiCombineOptions::EagerOnly(), &orig_m, &anti_m);
  EXPECT_LT(anti_m.emitted_bytes, orig_m.emitted_bytes);
  EXPECT_LT(anti_m.emitted_records, orig_m.emitted_records);
}

TEST(AntiCombining, LazyShuffleIsSmallerThanEagerForDistinctValues) {
  JobSpec original = SyntheticJob({16, 500, false, false}, 2);
  auto splits = MakeSplits(SyntheticInput(400, 13), 2);
  JobMetrics eager_m, lazy_m;
  MustRun(EnableAntiCombining(original, AntiCombineOptions::EagerOnly()),
          splits, &eager_m);
  MustRun(EnableAntiCombining(original, AntiCombineOptions::Unrestricted()),
          splits, &lazy_m);
  EXPECT_LT(lazy_m.emitted_bytes, eager_m.emitted_bytes);
}

TEST(AntiCombining, RemapCallsHappenOnlyForLazyRecords) {
  JobSpec original = SyntheticJob({8, 50, false, false}, 2);
  JobMetrics m;
  MustRun(EnableAntiCombining(original, AntiCombineOptions::Unrestricted()),
          MakeSplits(SyntheticInput(200, 17), 2), &m);
  EXPECT_EQ(m.remap_calls, m.lazy_records);
}

TEST(AntiCombining, SharedSpillsWhenMemoryTight) {
  JobSpec original = SyntheticJob({16, 40, true, false}, 2);
  AntiCombineOptions options;
  options.shared_memory_bytes = 2048;  // force Shared to spill
  JobMetrics orig_m, anti_m;
  ExpectEquivalent(original, MakeSplits(SyntheticInput(800, 19), 2), options,
                   &orig_m, &anti_m);
  EXPECT_GT(anti_m.shared_spills, 0u);
}

TEST(AntiCombining, SecondarySortGroupingComparator) {
  // Fixed-width keys "gg|ss": sort on the full key, group and partition on
  // the first two characters (a grouping comparator must be consistent with
  // the sort order, as in Hadoop).
  class SecondaryMapper : public Mapper {
   public:
    void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
      const uint64_t h = Hash64(key) ^ Hash64(value);
      for (int i = 0; i < 6; ++i) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "%02d|%02d",
                      static_cast<int>((h + static_cast<uint64_t>(i)) % 20),
                      static_cast<int>((h >> 8) % 100));
        ctx->Emit(Slice(buf, 5), "v" + std::to_string(h % 50));
      }
    }
  };
  class PrimaryPartitioner : public Partitioner {
   public:
    int Partition(const Slice& key, int num_partitions) const override {
      return static_cast<int>(Hash64(key.data(), 2) %
                              static_cast<uint64_t>(num_partitions));
    }
  };
  JobSpec original = SyntheticJob({1, 1, true, false}, 3);
  original.mapper_factory = []() { return std::make_unique<SecondaryMapper>(); };
  original.partitioner = std::make_shared<PrimaryPartitioner>();
  original.grouping_cmp = [](const Slice& a, const Slice& b) {
    return Slice(a.data(), 2).compare(Slice(b.data(), 2));
  };
  ExpectEquivalent(original, MakeSplits(SyntheticInput(300, 23), 2),
                   AntiCombineOptions());
}

// ---------------------------------------------------------------------------
// Cross-call window extension (paper Section 9 future work).

TEST(AntiCombining, CrossCallWindowEquivalence) {
  for (int window : {2, 8, 64}) {
    for (bool shared_values : {true, false}) {
      JobSpec original = SyntheticJob({6, 40, shared_values, false}, 4);
      AntiCombineOptions options;
      options.cross_call_window = window;
      ExpectEquivalent(original, MakeSplits(SyntheticInput(400, 37), 3),
                       options);
    }
  }
}

TEST(AntiCombining, CrossCallWindowWithSpillsAndCombiner) {
  JobSpec original = SyntheticJob({8, 50, true, true}, 4);
  original.map_buffer_bytes = 8 * 1024;
  AntiCombineOptions options;
  options.cross_call_window = 16;
  ExpectEquivalent(original, MakeSplits(SyntheticInput(500, 41), 3), options);
}

TEST(AntiCombining, CrossCallWindowEagerOnly) {
  JobSpec original = SyntheticJob({8, 50, true, false}, 4);
  AntiCombineOptions options;
  options.cross_call_window = 8;
  options.lazy_threshold_nanos = 0;
  JobMetrics orig_m, anti_m;
  ExpectEquivalent(original, MakeSplits(SyntheticInput(400, 43), 2), options,
                   &orig_m, &anti_m);
  EXPECT_EQ(anti_m.lazy_records, 0u);
}

TEST(AntiCombining, CrossCallWindowIncreasesSharing) {
  // WordCount-shaped mapper: every output value is identical, so value
  // groups can span Map calls and a larger window strictly increases
  // collapsing.
  class OnesMapper : public Mapper {
   public:
    void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
      const uint64_t h = Hash64(key) ^ Hash64(value);
      for (int i = 0; i < 4; ++i) {
        ctx->Emit("w" + std::to_string((h + static_cast<uint64_t>(i)) % 200),
                  "1");
      }
    }
  };
  JobSpec original;
  original.name = "ones";
  original.mapper_factory = []() { return std::make_unique<OnesMapper>(); };
  original.reducer_factory = []() { return std::make_unique<DigestReducer>(); };
  original.num_reduce_tasks = 4;
  const auto splits = MakeSplits(SyntheticInput(600, 47), 2);

  uint64_t previous = UINT64_MAX;
  for (int window : {1, 8, 64}) {
    AntiCombineOptions options;
    options.cross_call_window = window;
    options.lazy_threshold_nanos = 0;  // isolate the Eager effect
    JobMetrics m;
    MustRun(EnableAntiCombining(original, options), splits, &m);
    EXPECT_LT(m.emitted_records, previous) << "window=" << window;
    previous = m.emitted_records;
  }
}

TEST(AntiCombining, MapperEmittingNothingIsFine) {
  JobSpec original = SyntheticJob({1, 10, false, false}, 2);
  original.mapper_factory = []() {
    class NullMapper : public Mapper {
      void Map(const Slice&, const Slice&, MapContext*) override {}
    };
    return std::make_unique<NullMapper>();
  };
  ExpectEquivalent(original, MakeSplits(SyntheticInput(50, 29), 2),
                   AntiCombineOptions());
}

TEST(AntiCombining, DuplicateOutputRecordsSurviveEncoding) {
  // Map emits the exact same (key, value) pair several times; the value
  // multiset must survive EagerSH's grouping.
  JobSpec original = SyntheticJob({1, 10, false, false}, 2);
  original.mapper_factory = []() {
    class DupMapper : public Mapper {
      void Map(const Slice& key, const Slice& value,
               MapContext* ctx) override {
        for (int i = 0; i < 4; ++i) ctx->Emit(key, value);
        ctx->Emit(key, "other");
      }
    };
    return std::make_unique<DupMapper>();
  };
  ExpectEquivalent(original, MakeSplits(SyntheticInput(100, 31), 2),
                   AntiCombineOptions());
}

}  // namespace
}  // namespace antimr
