// Allocation-count regression tests for the vectorized batch path. The
// point of NextBatch is amortization: draining a segment (or a merge) in
// batches must never heap-allocate more than the record-at-a-time loop it
// replaces. alloc_counter.h replaces global operator new for this binary —
// it must stay included from exactly this one translation unit.
#include "alloc_counter.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "io/merger.h"
#include "io/run_file.h"
#include "table/chunk_reader.h"
#include "table/chunk_writer.h"

namespace antimr {
namespace {

using Records = std::vector<std::pair<std::string, std::string>>;

Records SortedRecords(size_t n) {
  Records records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06zu", i);
    records.emplace_back(key, std::string(24, 'a' + (i % 26)));
  }
  return records;
}

class BatchDrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    records_ = SortedRecords(5000);
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("chunk", &file).ok());
    ChunkWriter::Options wopts;
    wopts.block_bytes = 8 * 1024;
    ChunkWriter writer(std::move(file), wopts);
    for (const auto& [k, v] : records_) {
      ASSERT_TRUE(writer.Append(k, v).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  /// Allocations for a full record-at-a-time drain of a fresh reader.
  uint64_t RecordDrainAllocs(size_t* count_out) {
    std::unique_ptr<ChunkReader> reader;
    EXPECT_TRUE(OpenChunk(env_.get(), "chunk", {}, &reader).ok());
    size_t count = 0;
    const uint64_t before = test_alloc::AllocationCount();
    while (reader->Valid()) {
      count += 1;
      EXPECT_TRUE(reader->Next().ok());
    }
    const uint64_t after = test_alloc::AllocationCount();
    *count_out = count;
    return after - before;
  }

  /// Allocations for a full batched drain of a fresh reader. The batch is
  /// reused across calls, as the real drain loops reuse theirs: its capacity
  /// growth is a one-time cost, paid in the warm-up run.
  uint64_t BatchDrainAllocs(size_t* count_out) {
    std::unique_ptr<ChunkReader> reader;
    EXPECT_TRUE(OpenChunk(env_.get(), "chunk", {}, &reader).ok());
    BatchOptions opts;
    size_t count = 0;
    const uint64_t before = test_alloc::AllocationCount();
    while (true) {
      EXPECT_TRUE(reader->NextBatch(&batch_, opts).ok());
      if (batch_.empty()) break;
      count += batch_.size();
    }
    const uint64_t after = test_alloc::AllocationCount();
    *count_out = count;
    return after - before;
  }

  std::unique_ptr<Env> env_;
  Records records_;
  RecordBatch batch_;
};

TEST_F(BatchDrainTest, BatchedChunkDrainAllocatesNoMoreThanRecordDrain) {
  // Warm both paths once: first-use growth (decode scratch, batch capacity)
  // is not what this test polices.
  size_t n = 0;
  (void)RecordDrainAllocs(&n);
  ASSERT_EQ(n, records_.size());
  (void)BatchDrainAllocs(&n);
  ASSERT_EQ(n, records_.size());

  const uint64_t record_allocs = RecordDrainAllocs(&n);
  ASSERT_EQ(n, records_.size());
  const uint64_t batch_allocs = BatchDrainAllocs(&n);
  ASSERT_EQ(n, records_.size());

  EXPECT_LE(batch_allocs, record_allocs)
      << "batched drain allocates more than the per-record path it replaces";
}

TEST_F(BatchDrainTest, BatchedMergeDrainAllocatesNoMoreThanRecordDrain) {
  // Three-way merge over borrowed vectors: the streams themselves never
  // allocate, so the diff isolates the merge loops.
  Records a, b, c;
  for (size_t i = 0; i < records_.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).push_back(records_[i]);
  }
  auto make_merge = [&]() {
    std::vector<std::unique_ptr<KVStream>> inputs;
    inputs.push_back(std::make_unique<VectorStream>(&a));
    inputs.push_back(std::make_unique<VectorStream>(&b));
    inputs.push_back(std::make_unique<VectorStream>(&c));
    return std::make_unique<MergingStream>(std::move(inputs),
                                           BytewiseCompare);
  };

  auto record_drain = [&](size_t* count) {
    auto merged = make_merge();
    const uint64_t before = test_alloc::AllocationCount();
    *count = 0;
    while (merged->Valid()) {
      *count += 1;
      EXPECT_TRUE(merged->Next().ok());
    }
    return test_alloc::AllocationCount() - before;
  };
  RecordBatch batch;  // reused: capacity growth is paid in the warm-up run
  auto batch_drain = [&](size_t* count) {
    auto merged = make_merge();
    BatchOptions opts;
    const uint64_t before = test_alloc::AllocationCount();
    *count = 0;
    while (true) {
      EXPECT_TRUE(merged->NextBatch(&batch, opts).ok());
      if (batch.empty()) break;
      *count += batch.size();
    }
    return test_alloc::AllocationCount() - before;
  };

  size_t n = 0;
  (void)record_drain(&n);
  ASSERT_EQ(n, records_.size());
  (void)batch_drain(&n);
  ASSERT_EQ(n, records_.size());

  const uint64_t record_allocs = record_drain(&n);
  ASSERT_EQ(n, records_.size());
  const uint64_t batch_allocs = batch_drain(&n);
  ASSERT_EQ(n, records_.size());
  EXPECT_LE(batch_allocs, record_allocs);
}

}  // namespace
}  // namespace antimr
