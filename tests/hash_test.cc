#include "common/hash.h"

#include <set>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Hash, DeterministicAcrossCalls) {
  EXPECT_EQ(Hash64(Slice("abc")), Hash64(Slice("abc")));
  EXPECT_NE(Hash64(Slice("abc")), Hash64(Slice("abd")));
}

TEST(Hash, SeedChangesResult) {
  EXPECT_NE(Hash64(Slice("abc"), 1), Hash64(Slice("abc"), 2));
}

TEST(Hash, EmptyInput) {
  // Empty input hashes to the seed; two seeds differ.
  EXPECT_EQ(Hash64(Slice(""), 99u), 99u);
}

TEST(Hash, ReasonableDistributionOverPartitions) {
  // Hash partitioning of sequential keys must not collapse onto few buckets.
  constexpr int kPartitions = 16;
  int counts[kPartitions] = {};
  for (int i = 0; i < 16000; ++i) {
    const std::string key = "key" + std::to_string(i);
    counts[Hash64(key) % kPartitions]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 16000 / kPartitions / 2);
    EXPECT_LT(c, 16000 / kPartitions * 2);
  }
}

TEST(Hash, Mix32AndMix64AreBijectivelySpread) {
  std::set<uint32_t> seen32;
  for (uint32_t i = 0; i < 1000; ++i) seen32.insert(HashMix32(i));
  EXPECT_EQ(seen32.size(), 1000u);
  std::set<uint64_t> seen64;
  for (uint64_t i = 0; i < 1000; ++i) seen64.insert(HashMix64(i));
  EXPECT_EQ(seen64.size(), 1000u);
}

}  // namespace
}  // namespace antimr
