// End-to-end tests of the MapReduce framework: map/shuffle/reduce semantics,
// spilling, combiners, codecs, comparators, and metrics plumbing.
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "datagen/random_text.h"
#include "test_util.h"
#include "workloads/sort.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace {

using testing::Canonicalize;
using testing::MustRun;

class EchoMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

class ConcatReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    std::string joined;
    Slice v;
    while (values->Next(&v)) {
      if (!joined.empty()) joined.push_back('|');
      joined.append(v.data(), v.size());
    }
    ctx->Emit(key, joined);
  }
};

JobSpec EchoConcatJob(int reduce_tasks = 3) {
  JobSpec spec;
  spec.name = "echo_concat";
  spec.mapper_factory = []() { return std::make_unique<EchoMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<ConcatReducer>(); };
  spec.num_reduce_tasks = reduce_tasks;
  return spec;
}

TEST(JobRunner, EmptyInput) {
  JobResult result;
  ASSERT_TRUE(RunJob(EchoConcatJob(), {MakeSplit({})}, &result).ok());
  EXPECT_TRUE(result.FlatOutput().empty());
  EXPECT_EQ(result.metrics.input_records, 0u);
}

TEST(JobRunner, SingleRecord) {
  auto out = MustRun(EchoConcatJob(), {MakeSplit({{"k", "v"}})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "k");
  EXPECT_EQ(out[0].value, "v");
}

TEST(JobRunner, GroupsValuesByKey) {
  std::vector<KV> input = {{"a", "1"}, {"b", "2"}, {"a", "3"}, {"b", "4"},
                           {"a", "5"}};
  auto out = Canonicalize(MustRun(EchoConcatJob(1), MakeSplits(input, 2)));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "a");
  // Values arrive in (map task, emission) order through the stable merge.
  EXPECT_EQ(out[0].value, "1|3|5");
  EXPECT_EQ(out[1].key, "b");
  EXPECT_EQ(out[1].value, "2|4");
}

TEST(JobRunner, ReduceCallsHappenInKeyOrder) {
  class OrderCheckingReducer : public Reducer {
   public:
    void Setup(const TaskInfo& info, ReduceContext*) override {
      cmp_ = info.key_cmp;
    }
    void Reduce(const Slice& key, ValueIterator* values,
                ReduceContext* ctx) override {
      if (!last_.empty()) {
        EXPECT_LT(cmp_(last_, key), 0) << "keys out of order";
      }
      last_ = key.ToString();
      Slice v;
      while (values->Next(&v)) {
      }
      ctx->Emit(key, "");
    }
    KeyComparator cmp_;
    std::string last_;
  };
  JobSpec spec = EchoConcatJob(2);
  spec.reducer_factory = []() {
    return std::make_unique<OrderCheckingReducer>();
  };
  std::vector<KV> input;
  for (int i = 99; i >= 0; --i) {
    input.push_back({"key" + std::to_string(i), "v"});
  }
  auto out = MustRun(spec, MakeSplits(input, 4));
  EXPECT_EQ(out.size(), 100u);
}

TEST(JobRunner, PartitioningSendsEachKeyToOneTask) {
  std::vector<KV> input;
  for (int i = 0; i < 500; ++i) {
    input.push_back({"k" + std::to_string(i % 50), std::to_string(i)});
  }
  JobResult result;
  ASSERT_TRUE(RunJob(EchoConcatJob(7), MakeSplits(input, 3), &result).ok());
  // Each key must appear in exactly one reduce task's output.
  std::map<std::string, int> task_of_key;
  for (size_t t = 0; t < result.outputs.size(); ++t) {
    for (const KV& kv : result.outputs[t]) {
      auto [it, inserted] = task_of_key.emplace(kv.key, static_cast<int>(t));
      EXPECT_TRUE(inserted) << "key " << kv.key << " in two tasks";
    }
  }
  EXPECT_EQ(task_of_key.size(), 50u);
}

TEST(JobRunner, SpillingPreservesResults) {
  std::vector<KV> input;
  for (int i = 0; i < 2000; ++i) {
    input.push_back({"k" + std::to_string(i % 100),
                     "value_" + std::to_string(i)});
  }
  JobSpec spec = EchoConcatJob(4);
  auto no_spill = Canonicalize(MustRun(spec, MakeSplits(input, 2)));

  spec.map_buffer_bytes = 4096;  // force many spills
  JobMetrics metrics;
  auto with_spill =
      Canonicalize(MustRun(spec, MakeSplits(input, 2), &metrics));
  EXPECT_GT(metrics.map_spills, 2u);
  EXPECT_EQ(no_spill.size(), with_spill.size());
  for (size_t i = 0; i < no_spill.size(); ++i) {
    EXPECT_EQ(no_spill[i].key, with_spill[i].key);
    EXPECT_EQ(no_spill[i].value, with_spill[i].value);
  }
}

TEST(JobRunner, CombinerReducesShuffledRecords) {
  RandomTextConfig cfg;
  cfg.num_lines = 500;
  cfg.vocabulary_words = 50;
  RandomTextGenerator gen(cfg);

  workloads::WordCountConfig wc;
  wc.with_combiner = false;
  JobMetrics no_combiner;
  auto out1 = Canonicalize(
      MustRun(workloads::MakeWordCountJob(wc), gen.MakeSplits(4),
              &no_combiner));

  wc.with_combiner = true;
  JobMetrics with_combiner;
  auto out2 = Canonicalize(
      MustRun(workloads::MakeWordCountJob(wc), gen.MakeSplits(4),
              &with_combiner));

  EXPECT_EQ(out1, out2);
  EXPECT_LT(with_combiner.shuffle_bytes, no_combiner.shuffle_bytes / 2);
  EXPECT_GT(with_combiner.combine_input_records, 0u);
}

TEST(JobRunner, MapOutputCompressionRoundTrips) {
  std::vector<KV> input;
  for (int i = 0; i < 300; ++i) {
    input.push_back({"key" + std::to_string(i % 20),
                     "the quick brown fox " + std::to_string(i)});
  }
  JobSpec plain = EchoConcatJob(3);
  auto expected = Canonicalize(MustRun(plain, MakeSplits(input, 2)));
  for (CodecType codec :
       {CodecType::kSnappyLike, CodecType::kDeflateLike, CodecType::kGzip,
        CodecType::kBzip2Like}) {
    JobSpec spec = EchoConcatJob(3);
    spec.map_output_codec = codec;
    JobMetrics metrics;
    auto actual = Canonicalize(MustRun(spec, MakeSplits(input, 2), &metrics));
    EXPECT_EQ(expected, actual) << CodecTypeName(codec);
    EXPECT_LT(metrics.shuffle_bytes, metrics.emitted_bytes)
        << CodecTypeName(codec) << " should compress this redundant input";
  }
}

TEST(JobRunner, GroupingComparatorEnablesSecondarySort) {
  // Keys are "primary#secondary"; sort by full key, group by primary only:
  // each Reduce call sees its group's values ordered by secondary key.
  auto primary = [](const Slice& k) {
    size_t i = 0;
    while (i < k.size() && k[i] != '#') ++i;
    return Slice(k.data(), i);
  };
  JobSpec spec = EchoConcatJob(2);
  spec.grouping_cmp = [primary](const Slice& a, const Slice& b) {
    return primary(a).compare(primary(b));
  };
  // Secondary sort requires partitioning on the primary key, as in Hadoop.
  class PrimaryPartitioner : public Partitioner {
   public:
    int Partition(const Slice& key, int num_partitions) const override {
      size_t i = 0;
      while (i < key.size() && key[i] != '#') ++i;
      return static_cast<int>(Hash64(key.data(), i) %
                              static_cast<uint64_t>(num_partitions));
    }
  };
  spec.partitioner = std::make_shared<PrimaryPartitioner>();
  std::vector<KV> input = {{"a#3", "x3"}, {"a#1", "x1"}, {"b#2", "y2"},
                           {"a#2", "x2"}, {"b#1", "y1"}};
  auto out = Canonicalize(MustRun(spec, {MakeSplit(input)}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "a#1");  // group key = first key of group
  EXPECT_EQ(out[0].value, "x1|x2|x3");
  EXPECT_EQ(out[1].key, "b#1");
  EXPECT_EQ(out[1].value, "y1|y2");
}

TEST(JobRunner, MetricsAccounting) {
  std::vector<KV> input;
  for (int i = 0; i < 100; ++i) input.push_back({"k" + std::to_string(i), "v"});
  JobMetrics m;
  MustRun(EchoConcatJob(4), MakeSplits(input, 2), &m);
  EXPECT_EQ(m.input_records, 100u);
  EXPECT_EQ(m.map_output_records, 100u);
  EXPECT_EQ(m.emitted_records, 100u);
  EXPECT_EQ(m.reduce_input_records, 100u);
  EXPECT_EQ(m.reduce_groups, 100u);
  EXPECT_EQ(m.output_records, 100u);
  EXPECT_GT(m.shuffle_bytes, 0u);
  EXPECT_GT(m.disk_bytes_written, 0u);
  EXPECT_GT(m.disk_bytes_read, 0u);
  EXPECT_GT(m.total_cpu_nanos, 0u);
  EXPECT_GT(m.wall_nanos, 0u);
}

TEST(JobRunner, ValidatesSpec) {
  JobSpec spec;  // no mapper/reducer
  JobResult result;
  EXPECT_TRUE(RunJob(spec, {MakeSplit({})}, &result)
                  .IsInvalidArgument());
  spec = EchoConcatJob();
  spec.num_reduce_tasks = 0;
  EXPECT_TRUE(RunJob(spec, {MakeSplit({})}, &result).IsInvalidArgument());
}

TEST(JobRunner, ManyMapTasksManyReducers) {
  std::vector<KV> input;
  for (int i = 0; i < 1000; ++i) {
    input.push_back({"k" + std::to_string(i % 37), std::to_string(i)});
  }
  auto expected = Canonicalize(MustRun(EchoConcatJob(1), {MakeSplit(input)}));
  auto actual =
      Canonicalize(MustRun(EchoConcatJob(16), MakeSplits(input, 11)));
  // Group contents identical regardless of parallelism.
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].key, actual[i].key);
    EXPECT_EQ(expected[i].value, actual[i].value);
  }
}

TEST(JobRunner, SortWorkloadOrdersOutputWithinTask) {
  RandomTextConfig cfg;
  cfg.num_lines = 200;
  RandomTextGenerator gen(cfg);
  workloads::SortConfig sc;
  sc.num_reduce_tasks = 3;
  JobResult result;
  ASSERT_TRUE(RunJob(workloads::MakeSortJob(sc), gen.MakeSplits(3), &result)
                  .ok());
  for (const auto& task_output : result.outputs) {
    for (size_t i = 1; i < task_output.size(); ++i) {
      EXPECT_LE(task_output[i - 1].key, task_output[i].key);
    }
  }
}

}  // namespace
}  // namespace antimr
