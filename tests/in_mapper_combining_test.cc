#include "mr/in_mapper_combining.h"

#include <map>

#include <gtest/gtest.h>

#include "datagen/random_text.h"
#include "test_util.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace {

using testing::Canonicalize;
using testing::MustRun;

std::map<std::string, std::string> RunToMap(const JobSpec& spec,
                                            const std::vector<InputSplit>& s) {
  std::map<std::string, std::string> out;
  for (const KV& kv : MustRun(spec, s)) out[kv.key] = kv.value;
  return out;
}

TEST(InMapperCombining, PreservesWordCountResults) {
  RandomTextConfig rc;
  rc.num_lines = 500;
  rc.vocabulary_words = 60;
  RandomTextGenerator gen(rc);
  workloads::WordCountConfig cfg;
  cfg.with_combiner = true;
  const JobSpec base = workloads::MakeWordCountJob(cfg);
  EXPECT_EQ(RunToMap(base, gen.MakeSplits(3)),
            RunToMap(ApplyInMapperCombining(base), gen.MakeSplits(3)));
}

TEST(InMapperCombining, ShrinksEmittedRecords) {
  RandomTextConfig rc;
  rc.num_lines = 1000;
  rc.vocabulary_words = 100;
  RandomTextGenerator gen(rc);
  workloads::WordCountConfig cfg;
  cfg.with_combiner = false;
  JobMetrics plain, in_mapper;
  MustRun(workloads::MakeWordCountJob(cfg), gen.MakeSplits(2), &plain);
  cfg.with_combiner = true;
  MustRun(ApplyInMapperCombining(workloads::MakeWordCountJob(cfg)),
          gen.MakeSplits(2), &in_mapper);
  // Aggregation happens before the shuffle pipeline entirely.
  EXPECT_LT(in_mapper.emitted_records * 10, plain.emitted_records);
}

TEST(InMapperCombining, FlushesOnMemoryBudget) {
  RandomTextConfig rc;
  rc.num_lines = 800;
  rc.vocabulary_words = 400;
  RandomTextGenerator gen(rc);
  workloads::WordCountConfig cfg;
  cfg.with_combiner = true;
  const JobSpec base = workloads::MakeWordCountJob(cfg);
  // A tiny budget forces many intra-task flushes; results must not change.
  EXPECT_EQ(RunToMap(ApplyInMapperCombining(base, /*memory_budget=*/512),
                     gen.MakeSplits(2)),
            RunToMap(ApplyInMapperCombining(base), gen.MakeSplits(2)));
}

TEST(InMapperCombining, ComposesWithAntiCombining) {
  RandomTextConfig rc;
  rc.num_lines = 400;
  rc.vocabulary_words = 80;
  RandomTextGenerator gen(rc);
  workloads::WordCountConfig cfg;
  cfg.with_combiner = true;
  const JobSpec wrapped =
      ApplyInMapperCombining(workloads::MakeWordCountJob(cfg));
  testing::ExpectEquivalent(wrapped, gen.MakeSplits(3),
                            anticombine::AntiCombineOptions());
}

TEST(PerTaskMetrics, CollectedOnRequest) {
  RandomTextConfig rc;
  rc.num_lines = 200;
  RandomTextGenerator gen(rc);
  workloads::WordCountConfig cfg;
  RunOptions options;
  options.collect_task_metrics = true;
  JobResult result;
  ASSERT_TRUE(RunJob(workloads::MakeWordCountJob(cfg), gen.MakeSplits(3),
                     options, &result)
                  .ok());
  int maps = 0, reduces = 0;
  uint64_t task_inputs = 0;
  for (const TaskMetrics& t : result.task_metrics) {
    if (t.is_map) {
      ++maps;
      task_inputs += t.metrics.input_records;
    } else {
      ++reduces;
    }
  }
  EXPECT_EQ(maps, 3);
  EXPECT_EQ(reduces, cfg.num_reduce_tasks);
  EXPECT_EQ(task_inputs, result.metrics.input_records);

  // Off by default.
  JobResult plain;
  ASSERT_TRUE(
      RunJob(workloads::MakeWordCountJob(cfg), gen.MakeSplits(3), &plain)
          .ok());
  EXPECT_TRUE(plain.task_metrics.empty());
}

}  // namespace
}  // namespace antimr
