// Failure injection: storage faults at controlled points must surface as
// Status errors from RunJob — never crashes, hangs, or silent data loss.
// Every scenario runs under both shuffle models: the pipelined scheduler's
// concurrent fetch graph and the classic two-wave barrier.
#include <atomic>
#include <memory>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/job_plan.h"
#include "test_util.h"

namespace antimr {
namespace {

/// Env wrapper that fails operations once a budget is exhausted.
class FaultyEnv : public Env {
 public:
  FaultyEnv(std::unique_ptr<Env> base, int fail_after_ops)
      : base_(std::move(base)), remaining_(fail_after_ops) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewWritableFile"));
    return base_->NewWritableFile(fname, file);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewSequentialFile"));
    return base_->NewSequentialFile(fname, file);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewRandomAccessFile"));
    return base_->NewRandomAccessFile(fname, file);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status DeleteFile(const std::string& fname) override {
    return base_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status ListFiles(std::vector<std::string>* names) override {
    return base_->ListFiles(names);
  }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  int operations_seen() const { return ops_.load(); }

 private:
  Status Tick(const char* op) {
    ops_.fetch_add(1);
    if (remaining_.fetch_sub(1) <= 0) {
      return Status::IOError(std::string("injected fault in ") + op);
    }
    return Status::OK();
  }

  std::unique_ptr<Env> base_;
  std::atomic<int> remaining_;
  std::atomic<int> ops_{0};
};

class FanoutMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    for (int i = 0; i < 4; ++i) {
      ctx->Emit(key.ToString() + std::to_string(i), value);
    }
  }
};

class CountReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t n = 0;
    Slice v;
    while (values->Next(&v)) ++n;
    ctx->Emit(key, std::to_string(n));
  }
};

JobSpec TestJob() {
  JobSpec spec;
  spec.name = "fault_test";
  spec.mapper_factory = []() { return std::make_unique<FanoutMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = 3;
  spec.map_buffer_bytes = 2048;  // force spills so merge paths execute
  return spec;
}

std::vector<KV> TestInput() {
  std::vector<KV> input;
  for (int i = 0; i < 300; ++i) {
    input.push_back({"key" + std::to_string(i % 40), "v" + std::to_string(i)});
  }
  return input;
}

class FaultInjection : public ::testing::TestWithParam<ShuffleMode> {
 protected:
  RunOptions MakeOptions(Env* env) const {
    RunOptions options;
    options.env = env;
    options.shuffle_mode = GetParam();
    return options;
  }

  int CountEnvOps() const {
    FaultyEnv env(NewMemEnv(), /*fail_after_ops=*/1 << 30);
    JobResult result;
    EXPECT_TRUE(RunJob(TestJob(), MakeSplits(TestInput(), 2),
                       MakeOptions(&env), &result)
                    .ok());
    return env.operations_seen();
  }
};

TEST_P(FaultInjection, CleanRunEstablishesBaseline) {
  // The job exercises enough I/O that fault sweeps below are meaningful.
  EXPECT_GT(CountEnvOps(), 20);
}

TEST_P(FaultInjection, EveryFaultPointSurfacesAsStatus) {
  const int total_ops = CountEnvOps();
  // Inject a fault at every I/O operation index in turn; RunJob must fail
  // cleanly (no crash, no hang, no OK-with-missing-data). fail_at = N allows
  // N ops through, so the last injectable point is total_ops - 1.
  for (int fail_at = 0; fail_at < total_ops; ++fail_at) {
    FaultyEnv env(NewMemEnv(), fail_at);
    JobResult result;
    const Status st = RunJob(TestJob(), MakeSplits(TestInput(), 2),
                             MakeOptions(&env), &result);
    EXPECT_FALSE(st.ok()) << "fault at op " << fail_at << " was swallowed";
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }
}

TEST_P(FaultInjection, JobSucceedsWhenFaultBudgetNotReached) {
  const int total_ops = CountEnvOps();
  FaultyEnv env(NewMemEnv(), total_ops + 100);
  JobResult result;
  EXPECT_TRUE(RunJob(TestJob(), MakeSplits(TestInput(), 2), MakeOptions(&env),
                     &result)
                  .ok());
  EXPECT_EQ(result.metrics.reduce_groups, 40u * 4);
}

// A fault anywhere in a two-stage plan must fail the whole plan cleanly:
// the TaskGraph skips transitive dependents (including the downstream
// stage's tasks reading the dead partition) instead of hanging on them.
TEST_P(FaultInjection, MultiStagePlanFailsCleanly) {
  auto make_plan = [this]() {
    engine::JobPlan plan;
    plan.name = "fault_chain";
    EXPECT_TRUE(plan.AddInput("in", MakeSplits(TestInput(), 2)).ok());
    engine::Stage first;
    first.name = "first";
    first.spec = TestJob();
    first.inputs = {"in"};
    first.output = "mid";
    first.options.shuffle_mode = GetParam();
    plan.AddStage(std::move(first));
    engine::Stage second;
    second.name = "second";
    second.spec = TestJob();
    second.inputs = {"mid"};
    second.output = "out";
    second.options.shuffle_mode = GetParam();
    plan.AddStage(std::move(second));
    return plan;
  };

  int total_ops = 0;
  {
    FaultyEnv env(NewMemEnv(), 1 << 30);
    engine::ExecutorOptions exec_options;
    exec_options.env = &env;
    engine::Executor executor(exec_options);
    engine::PlanResult result;
    ASSERT_TRUE(executor.Run(make_plan(), &result).ok());
    total_ops = env.operations_seen();
  }
  ASSERT_GT(total_ops, 20);
  // Sample fault points across the whole plan (every op would be slow here:
  // the plan doubles the single-job op count and runs under two modes).
  for (int fail_at = 0; fail_at < total_ops; fail_at += 7) {
    FaultyEnv env(NewMemEnv(), fail_at);
    engine::ExecutorOptions exec_options;
    exec_options.env = &env;
    engine::Executor executor(exec_options);
    engine::PlanResult result;
    const Status st = executor.Run(make_plan(), &result);
    EXPECT_FALSE(st.ok()) << "fault at op " << fail_at << " was swallowed";
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(ShuffleModes, FaultInjection,
                         ::testing::Values(ShuffleMode::kPipelined,
                                           ShuffleMode::kBarrier),
                         [](const ::testing::TestParamInfo<ShuffleMode>& info) {
                           return info.param == ShuffleMode::kPipelined
                                      ? "Pipelined"
                                      : "Barrier";
                         });

}  // namespace
}  // namespace antimr
