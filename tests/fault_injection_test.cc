// Failure injection: storage faults at controlled points must surface as
// Status errors from RunJob — never crashes, hangs, or silent data loss.
// Every scenario runs under both shuffle models: the pipelined scheduler's
// concurrent fetch graph and the classic two-wave barrier.
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/coordinator.h"
#include "engine/executor.h"
#include "engine/job_plan.h"
#include "engine/job_registry.h"
#include "engine/worker.h"
#include "datagen/random_text.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"
#include "test_util.h"
#include "workloads/registry.h"

namespace antimr {
namespace {

/// Env wrapper that fails the sampled operations with index in
/// [fail_at, fail_at + fail_times). The default window is unbounded, i.e.
/// "allow fail_at ops through, then fail forever" — a hard outage. A finite
/// window (fail_times=1 is the interesting case) models a transient flake
/// that a retried task will get past. `fault_code` picks the injected
/// Status: IOError (transient, default) or Corruption (permanent).
class FaultyEnv : public Env {
 public:
  static constexpr int kForever = 1 << 30;

  FaultyEnv(std::unique_ptr<Env> base, int fail_at, int fail_times = kForever,
            Status::Code fault_code = Status::Code::kIOError)
      : base_(std::move(base)),
        fail_at_(fail_at),
        fail_times_(fail_times),
        fault_code_(fault_code) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewWritableFile"));
    return base_->NewWritableFile(fname, file);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewSequentialFile"));
    return base_->NewSequentialFile(fname, file);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewRandomAccessFile"));
    return base_->NewRandomAccessFile(fname, file);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status DeleteFile(const std::string& fname) override {
    return base_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status ListFiles(std::vector<std::string>* names) override {
    return base_->ListFiles(names);
  }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  int operations_seen() const { return ops_.load(); }
  int faults_injected() const { return injected_.load(); }

 private:
  Status Tick(const char* op) {
    const int index = ops_.fetch_add(1);
    if (index >= fail_at_ && index - fail_at_ < fail_times_) {
      injected_.fetch_add(1);
      const std::string msg = std::string("injected fault in ") + op;
      if (fault_code_ == Status::Code::kCorruption) {
        return Status::Corruption(msg);
      }
      return Status::IOError(msg);
    }
    return Status::OK();
  }

  std::unique_ptr<Env> base_;
  const int fail_at_;
  const int fail_times_;
  const Status::Code fault_code_;
  std::atomic<int> ops_{0};
  std::atomic<int> injected_{0};
};

class FanoutMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    for (int i = 0; i < 4; ++i) {
      ctx->Emit(key.ToString() + std::to_string(i), value);
    }
  }
};

class CountReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t n = 0;
    Slice v;
    while (values->Next(&v)) ++n;
    ctx->Emit(key, std::to_string(n));
  }
};

JobSpec TestJob() {
  JobSpec spec;
  spec.name = "fault_test";
  spec.mapper_factory = []() { return std::make_unique<FanoutMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = 3;
  spec.map_buffer_bytes = 2048;  // force spills so merge paths execute
  return spec;
}

std::vector<KV> TestInput() {
  std::vector<KV> input;
  for (int i = 0; i < 300; ++i) {
    input.push_back({"key" + std::to_string(i % 40), "v" + std::to_string(i)});
  }
  return input;
}

class FaultInjection : public ::testing::TestWithParam<ShuffleMode> {
 protected:
  RunOptions MakeOptions(Env* env) const {
    RunOptions options;
    options.env = env;
    options.shuffle_mode = GetParam();
    return options;
  }

  int CountEnvOps() const {
    FaultyEnv env(NewMemEnv(), /*fail_at=*/FaultyEnv::kForever);
    JobResult result;
    EXPECT_TRUE(RunJob(TestJob(), MakeSplits(TestInput(), 2),
                       MakeOptions(&env), &result)
                    .ok());
    return env.operations_seen();
  }

  /// Two-stage chain in -> first -> mid -> second -> out, both stages under
  /// the parameterized shuffle mode.
  engine::JobPlan MakeTwoStagePlan() const {
    engine::JobPlan plan;
    plan.name = "fault_chain";
    EXPECT_TRUE(plan.AddInput("in", MakeSplits(TestInput(), 2)).ok());
    engine::Stage first;
    first.name = "first";
    first.spec = TestJob();
    first.inputs = {"in"};
    first.output = "mid";
    first.options.shuffle_mode = GetParam();
    plan.AddStage(std::move(first));
    engine::Stage second;
    second.name = "second";
    second.spec = TestJob();
    second.inputs = {"mid"};
    second.output = "out";
    second.options.shuffle_mode = GetParam();
    plan.AddStage(std::move(second));
    return plan;
  }
};

TEST_P(FaultInjection, CleanRunEstablishesBaseline) {
  // The job exercises enough I/O that fault sweeps below are meaningful.
  EXPECT_GT(CountEnvOps(), 20);
}

TEST_P(FaultInjection, EveryFaultPointSurfacesAsStatus) {
  const int total_ops = CountEnvOps();
  // Inject a fault at every I/O operation index in turn; RunJob must fail
  // cleanly (no crash, no hang, no OK-with-missing-data). fail_at = N allows
  // N ops through, so the last injectable point is total_ops - 1.
  for (int fail_at = 0; fail_at < total_ops; ++fail_at) {
    FaultyEnv env(NewMemEnv(), fail_at);
    JobResult result;
    const Status st = RunJob(TestJob(), MakeSplits(TestInput(), 2),
                             MakeOptions(&env), &result);
    EXPECT_FALSE(st.ok()) << "fault at op " << fail_at << " was swallowed";
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }
}

TEST_P(FaultInjection, JobSucceedsWhenFaultBudgetNotReached) {
  const int total_ops = CountEnvOps();
  FaultyEnv env(NewMemEnv(), total_ops + 100);
  JobResult result;
  EXPECT_TRUE(RunJob(TestJob(), MakeSplits(TestInput(), 2), MakeOptions(&env),
                     &result)
                  .ok());
  EXPECT_EQ(result.metrics.reduce_groups, 40u * 4);
}

// A fault anywhere in a two-stage plan must fail the whole plan cleanly:
// the TaskGraph skips transitive dependents (including the downstream
// stage's tasks reading the dead partition) instead of hanging on them.
TEST_P(FaultInjection, MultiStagePlanFailsCleanly) {
  int total_ops = 0;
  {
    FaultyEnv env(NewMemEnv(), FaultyEnv::kForever);
    engine::ExecutorOptions exec_options;
    exec_options.env = &env;
    engine::Executor executor(exec_options);
    engine::PlanResult result;
    ASSERT_TRUE(executor.Run(MakeTwoStagePlan(), &result).ok());
    total_ops = env.operations_seen();
  }
  ASSERT_GT(total_ops, 20);
  // Sample fault points across the whole plan (every op would be slow here:
  // the plan doubles the single-job op count and runs under two modes).
  for (int fail_at = 0; fail_at < total_ops; fail_at += 7) {
    FaultyEnv env(NewMemEnv(), fail_at);
    engine::ExecutorOptions exec_options;
    exec_options.env = &env;
    engine::Executor executor(exec_options);
    engine::PlanResult result;
    const Status st = executor.Run(MakeTwoStagePlan(), &result);
    EXPECT_FALSE(st.ok()) << "fault at op " << fail_at << " was swallowed";
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    // Default max_task_attempts=1: a failed plan must still release every
    // intermediate dataset (skipped consumers never ran ConsumerDone; the
    // run epilogue has to cover them).
    for (const engine::DatasetInfo& ds : result.datasets) {
      if (ds.external || ds.retained) continue;
      EXPECT_TRUE(ds.released)
          << "dataset " << ds.name << " leaked, fault at op " << fail_at;
    }
  }
}

// The tentpole acceptance test: with retries enabled, a fail-once transient
// fault at ANY sampled I/O op of the two-stage plan must be survived — the
// plan completes and its output is byte-identical to a clean run (the
// LazySH determinism argument: re-executed tasks reproduce their output
// exactly, so retries change file names and timing, never data).
TEST_P(FaultInjection, TransientFaultsRecoverWithRetries) {
  int total_ops = 0;
  std::vector<KV> clean_output;
  {
    FaultyEnv env(NewMemEnv(), FaultyEnv::kForever);
    engine::ExecutorOptions exec_options;
    exec_options.env = &env;
    engine::Executor executor(exec_options);
    engine::PlanResult result;
    ASSERT_TRUE(executor.Run(MakeTwoStagePlan(), &result).ok());
    total_ops = env.operations_seen();
    clean_output = result.FlatOutput("out");
  }
  ASSERT_GT(total_ops, 20);
  ASSERT_FALSE(clean_output.empty());

  obs::Counter* const retries = obs::MetricsRegistry::Global().GetCounter(
      "antimr_task_retries_total",
      "Transient task failures answered with a re-execution");
  for (int fail_at = 0; fail_at < total_ops; fail_at += 7) {
    FaultyEnv env(NewMemEnv(), fail_at, /*fail_times=*/1);
    engine::ExecutorOptions exec_options;
    exec_options.env = &env;
    exec_options.max_task_attempts = 3;
    exec_options.retry_backoff_nanos = 1000;  // keep the sweep fast
    engine::Executor executor(exec_options);
    engine::PlanResult result;
    const uint64_t retries_before = retries->value();
    const Status st = executor.Run(MakeTwoStagePlan(), &result);
    ASSERT_TRUE(st.ok()) << "fault at op " << fail_at
                         << " not survived: " << st.ToString();
    EXPECT_EQ(env.faults_injected(), 1) << "fault at op " << fail_at;
    EXPECT_GE(retries->value() - retries_before, 1u)
        << "fault at op " << fail_at << " recovered without a retry?";
    EXPECT_TRUE(result.FlatOutput("out") == clean_output)
        << "output diverged after retry, fault at op " << fail_at;
  }
}

// The storage format must be invisible in results, even under faults and
// retries: a columnar-format run (compressed chunks, small blocks) must
// produce byte-identical output to the row-format clean run, both on a
// clean pass and across a transient-fault sweep with retries.
TEST_P(FaultInjection, ColumnarOutputMatchesRowUnderTransientFaults) {
  std::vector<KV> row_output;
  {
    auto env = NewMemEnv();
    JobResult result;
    ASSERT_TRUE(RunJob(TestJob(), MakeSplits(TestInput(), 2),
                       MakeOptions(env.get()), &result)
                    .ok());
    row_output = result.FlatOutput();
  }
  ASSERT_FALSE(row_output.empty());

  RunOptions columnar = MakeOptions(nullptr);
  columnar.record_format = RecordFormat::kColumnar;
  columnar.chunk_codec = CodecType::kSnappyLike;
  columnar.chunk_block_bytes = 1024;  // many blocks per segment

  int total_ops = 0;
  {
    FaultyEnv env(NewMemEnv(), FaultyEnv::kForever);
    columnar.env = &env;
    JobResult result;
    ASSERT_TRUE(
        RunJob(TestJob(), MakeSplits(TestInput(), 2), columnar, &result).ok());
    EXPECT_TRUE(result.FlatOutput() == row_output)
        << "clean columnar run diverged from row format";
    total_ops = env.operations_seen();
  }
  ASSERT_GT(total_ops, 20);

  columnar.max_task_attempts = 3;
  columnar.retry_backoff_nanos = 1000;  // keep the sweep fast
  for (int fail_at = 0; fail_at < total_ops; fail_at += 7) {
    FaultyEnv env(NewMemEnv(), fail_at, /*fail_times=*/1);
    columnar.env = &env;
    JobResult result;
    const Status st =
        RunJob(TestJob(), MakeSplits(TestInput(), 2), columnar, &result);
    ASSERT_TRUE(st.ok()) << "fault at op " << fail_at
                         << " not survived: " << st.ToString();
    EXPECT_TRUE(result.FlatOutput() == row_output)
        << "columnar output diverged, fault at op " << fail_at;
  }
}

// Permanent faults must NOT be retried: a Corruption error fails the plan
// on the first attempt even with a retry budget left. Retrying corruption
// would just re-read the same bad bytes and mask the bug.
TEST_P(FaultInjection, PermanentFaultsAreNotRetried) {
  obs::Counter* const retries = obs::MetricsRegistry::Global().GetCounter(
      "antimr_task_retries_total",
      "Transient task failures answered with a re-execution");
  FaultyEnv env(NewMemEnv(), /*fail_at=*/5, /*fail_times=*/1,
                Status::Code::kCorruption);
  engine::ExecutorOptions exec_options;
  exec_options.env = &env;
  exec_options.max_task_attempts = 3;
  engine::Executor executor(exec_options);
  engine::PlanResult result;
  const uint64_t retries_before = retries->value();
  const Status st = executor.Run(MakeTwoStagePlan(), &result);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(retries->value(), retries_before);
}

// A hard outage (faults from fail_at onward, forever) exhausts the retry
// budget and surfaces the transient error instead of looping.
TEST_P(FaultInjection, HardOutageExhaustsRetryBudget) {
  FaultyEnv env(NewMemEnv(), /*fail_at=*/5);
  engine::ExecutorOptions exec_options;
  exec_options.env = &env;
  exec_options.max_task_attempts = 3;
  exec_options.retry_backoff_nanos = 1000;
  engine::Executor executor(exec_options);
  engine::PlanResult result;
  const Status st = executor.Run(MakeTwoStagePlan(), &result);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // The failed task burned its full budget: 3 attempts = 3 injected faults
  // at minimum (dependent tasks may add their own).
  EXPECT_GE(env.faults_injected(), 3);
}

INSTANTIATE_TEST_SUITE_P(ShuffleModes, FaultInjection,
                         ::testing::Values(ShuffleMode::kPipelined,
                                           ShuffleMode::kBarrier),
                         [](const ::testing::TestParamInfo<ShuffleMode>& info) {
                           return info.param == ShuffleMode::kPipelined
                                      ? "Pipelined"
                                      : "Barrier";
                         });

// A worker whose local storage flakes transiently mid-job: the fault fails
// the task on that worker, the failure crosses the wire as the task's own
// Status, and the coordinator's retry layer re-places it. The cluster-level
// outcome must be byte-identical to a clean single-process run.
TEST(DistFaultInjection, DistributedJobRecoversFromWorkerStorageFlake) {
  workloads::RegisterStandardJobs();
  RandomTextConfig text_config;
  text_config.num_lines = 2000;
  text_config.seed = 3;
  const std::vector<KV> input = RandomTextGenerator(text_config).Generate();
  const net::JobParams params = {{"reduces", "3"}};

  JobSpec spec;
  ASSERT_TRUE(engine::BuildRegisteredJob("wordcount", params, &spec).ok());
  RunOptions run;
  run.collect_output = true;
  JobResult expected;
  ASSERT_TRUE(
      RunJob(spec, MakeSplits(input, 4), run, &expected).ok());

  std::unique_ptr<net::Transport> transport = net::NewLoopbackTransport();
  engine::Coordinator coord(transport.get());
  ASSERT_TRUE(coord.Start("").ok());

  FaultyEnv flaky(NewMemEnv(), /*fail_at=*/6, /*fail_times=*/1);
  engine::WorkerOptions flaky_options;
  flaky_options.name = "flaky";
  flaky_options.env = &flaky;
  engine::Worker flaky_worker(transport.get(), flaky_options);
  engine::Worker steady_worker(transport.get());
  ASSERT_TRUE(flaky_worker.Start(coord.addr()).ok());
  ASSERT_TRUE(steady_worker.Start(coord.addr()).ok());
  ASSERT_TRUE(coord.WaitForWorkers(2, 10ull * 1000 * 1000 * 1000));

  engine::DistJobOptions options;
  options.job_name = "wordcount";
  options.params = params;
  options.max_task_attempts = 4;
  options.retry_backoff_nanos = 1000;
  {
    const size_t per = (input.size() + 3) / 4;
    for (size_t start = 0; start < input.size(); start += per) {
      const size_t end = std::min(input.size(), start + per);
      options.splits.emplace_back(input.begin() + static_cast<long>(start),
                                  input.begin() + static_cast<long>(end));
    }
  }
  engine::DistJobResult result;
  const Status st = engine::RunDistributedJob(&coord, options, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(flaky.faults_injected(), 1);
  EXPECT_EQ(result.FlatOutput(), expected.FlatOutput());

  coord.Stop();
  flaky_worker.Stop();
  steady_worker.Stop();
}

}  // namespace
}  // namespace antimr
