// Failure injection: storage faults at controlled points must surface as
// Status errors from RunJob — never crashes, hangs, or silent data loss.
#include <atomic>
#include <memory>

#include <gtest/gtest.h>

#include "test_util.h"

namespace antimr {
namespace {

/// Env wrapper that fails operations once a budget is exhausted.
class FaultyEnv : public Env {
 public:
  FaultyEnv(std::unique_ptr<Env> base, int fail_after_ops)
      : base_(std::move(base)), remaining_(fail_after_ops) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewWritableFile"));
    return base_->NewWritableFile(fname, file);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewSequentialFile"));
    return base_->NewSequentialFile(fname, file);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    ANTIMR_RETURN_NOT_OK(Tick("NewRandomAccessFile"));
    return base_->NewRandomAccessFile(fname, file);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status DeleteFile(const std::string& fname) override {
    return base_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status ListFiles(std::vector<std::string>* names) override {
    return base_->ListFiles(names);
  }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  int operations_seen() const { return ops_.load(); }

 private:
  Status Tick(const char* op) {
    ops_.fetch_add(1);
    if (remaining_.fetch_sub(1) <= 0) {
      return Status::IOError(std::string("injected fault in ") + op);
    }
    return Status::OK();
  }

  std::unique_ptr<Env> base_;
  std::atomic<int> remaining_;
  std::atomic<int> ops_{0};
};

class FanoutMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    for (int i = 0; i < 4; ++i) {
      ctx->Emit(key.ToString() + std::to_string(i), value);
    }
  }
};

class CountReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t n = 0;
    Slice v;
    while (values->Next(&v)) ++n;
    ctx->Emit(key, std::to_string(n));
  }
};

JobSpec TestJob() {
  JobSpec spec;
  spec.name = "fault_test";
  spec.mapper_factory = []() { return std::make_unique<FanoutMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = 3;
  spec.map_buffer_bytes = 2048;  // force spills so merge paths execute
  return spec;
}

std::vector<KV> TestInput() {
  std::vector<KV> input;
  for (int i = 0; i < 300; ++i) {
    input.push_back({"key" + std::to_string(i % 40), "v" + std::to_string(i)});
  }
  return input;
}

int CountEnvOps() {
  FaultyEnv env(NewMemEnv(), /*fail_after_ops=*/1 << 30);
  RunOptions options;
  options.env = &env;
  JobResult result;
  EXPECT_TRUE(RunJob(TestJob(), MakeSplits(TestInput(), 2), options, &result)
                  .ok());
  return env.operations_seen();
}

TEST(FaultInjection, CleanRunEstablishesBaseline) {
  // The job exercises enough I/O that fault sweeps below are meaningful.
  EXPECT_GT(CountEnvOps(), 20);
}

TEST(FaultInjection, EveryFaultPointSurfacesAsStatus) {
  const int total_ops = CountEnvOps();
  // Inject a fault at every I/O operation index in turn; RunJob must fail
  // cleanly (no crash, no OK-with-missing-data). fail_at = N allows N ops
  // through, so the last injectable point is total_ops - 1.
  for (int fail_at = 0; fail_at < total_ops; ++fail_at) {
    FaultyEnv env(NewMemEnv(), fail_at);
    RunOptions options;
    options.env = &env;
    JobResult result;
    const Status st =
        RunJob(TestJob(), MakeSplits(TestInput(), 2), options, &result);
    EXPECT_FALSE(st.ok()) << "fault at op " << fail_at << " was swallowed";
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }
}

TEST(FaultInjection, JobSucceedsWhenFaultBudgetNotReached) {
  const int total_ops = CountEnvOps();
  FaultyEnv env(NewMemEnv(), total_ops + 100);
  RunOptions options;
  options.env = &env;
  JobResult result;
  EXPECT_TRUE(
      RunJob(TestJob(), MakeSplits(TestInput(), 2), options, &result).ok());
  EXPECT_EQ(result.metrics.reduce_groups, 40u * 4);
}

}  // namespace
}  // namespace antimr
