#include "common/random.h"

#include <cmath>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Random, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Random, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
  EXPECT_EQ(Random(1).Uniform(1), 0u);
}

TEST(Random, UniformCoversRange) {
  Random rng(7);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.Uniform(10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.03);
}

TEST(Random, GaussianMoments) {
  Random rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian(5.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Zipf, RankZeroIsMostPopular) {
  Random rng(13);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, SkewZeroIsUniform) {
  Random rng(17);
  ZipfSampler uniform(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[uniform.Sample(&rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 40);
  }
}

TEST(Zipf, SingleItem) {
  Random rng(19);
  ZipfSampler one(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one.Sample(&rng), 0u);
}

TEST(Random, SkewedStaysInBound) {
  Random rng(21);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Skewed(10), 1024u);
  }
}

}  // namespace
}  // namespace antimr
