#include "mr/metrics.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Metrics, AddAccumulatesEverything) {
  JobMetrics a, b;
  a.input_records = 10;
  a.emitted_bytes = 100;
  a.shared_spills = 2;
  a.cpu.map_fn = 1000;
  a.total_cpu_nanos = 5000;
  b.input_records = 5;
  b.emitted_bytes = 50;
  b.shared_spills = 1;
  b.cpu.map_fn = 200;
  b.cpu.reduce_fn = 300;
  b.total_cpu_nanos = 700;
  a.Add(b);
  EXPECT_EQ(a.input_records, 15u);
  EXPECT_EQ(a.emitted_bytes, 150u);
  EXPECT_EQ(a.shared_spills, 3u);
  EXPECT_EQ(a.cpu.map_fn, 1200u);
  EXPECT_EQ(a.cpu.reduce_fn, 300u);
  EXPECT_EQ(a.total_cpu_nanos, 5700u);
}

TEST(Metrics, PhaseTotalSumsAllPhases) {
  PhaseCpu cpu;
  cpu.map_fn = 1;
  cpu.partition_fn = 2;
  cpu.encode = 3;
  cpu.sort = 4;
  cpu.combine = 5;
  cpu.compress = 6;
  cpu.decompress = 7;
  cpu.merge = 8;
  cpu.decode = 9;
  cpu.remap = 10;
  cpu.shared = 11;
  cpu.reduce_fn = 12;
  EXPECT_EQ(cpu.Total(), 78u);
}

TEST(Metrics, FormatBytes) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(FormatBytes(5ULL << 30), "5.00 GB");
}

TEST(Metrics, FormatNanos) {
  EXPECT_EQ(FormatNanos(500), "500 ns");
  EXPECT_EQ(FormatNanos(1500), "1.500 us");
  EXPECT_EQ(FormatNanos(2500000), "2.500 ms");
  EXPECT_EQ(FormatNanos(1250000000ULL), "1.250 s");
}

TEST(Metrics, ToJsonIsWellFormedAndComplete) {
  JobMetrics m;
  m.input_records = 11;
  m.shuffle_bytes = 2048;
  m.cpu.remap = 77;
  m.total_cpu_nanos = 12345;
  const std::string json = m.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"input_records\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"shuffle_bytes\": 2048"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_remap_nanos\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"total_cpu_nanos\": 12345"), std::string::npos);
  // Balanced quoting and no trailing comma.
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(Metrics, ToJsonEmitsEveryCounterField) {
  // Walk the authoritative X-macro field lists: a counter added to the
  // struct but missing from ToJson (or vice versa) fails here.
  const std::string json = JobMetrics().ToJson();
#define ANTIMR_EXPECT_FIELD(name)                                    \
  EXPECT_NE(json.find("\"" #name "\": 0"), std::string::npos)        \
      << "ToJson is missing counter " #name;
  ANTIMR_JOB_SUM_FIELDS(ANTIMR_EXPECT_FIELD)
  ANTIMR_JOB_MAX_FIELDS(ANTIMR_EXPECT_FIELD)
#undef ANTIMR_EXPECT_FIELD
#define ANTIMR_EXPECT_PHASE(name)                                        \
  EXPECT_NE(json.find("\"cpu_" #name "_nanos\": 0"), std::string::npos) \
      << "ToJson is missing phase " #name;
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_EXPECT_PHASE)
#undef ANTIMR_EXPECT_PHASE
  EXPECT_NE(json.find("\"total_cpu_nanos\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"wall_nanos\": 0"), std::string::npos);
}

TEST(Metrics, AddMaxesPeakFields) {
  JobMetrics a, b;
  a.shuffle_peak_buffered_bytes = 100;
  b.shuffle_peak_buffered_bytes = 250;
  a.Add(b);
  EXPECT_EQ(a.shuffle_peak_buffered_bytes, 250u);
  b.shuffle_peak_buffered_bytes = 50;
  a.Add(b);
  EXPECT_EQ(a.shuffle_peak_buffered_bytes, 250u);
}

TEST(Metrics, TopTasksReportRanksByCpuAndNamesTheDominantPhase) {
  std::vector<TaskMetrics> tasks(3);
  tasks[0].is_map = true;
  tasks[0].task_id = 0;
  tasks[0].cpu_nanos = 1000;
  tasks[0].metrics.cpu.map_fn = 900;
  tasks[1].is_map = false;
  tasks[1].task_id = 4;
  tasks[1].cpu_nanos = 9000;
  tasks[1].metrics.cpu.reduce_fn = 6000;
  tasks[2].is_map = true;
  tasks[2].task_id = 2;
  tasks[2].cpu_nanos = 500;
  tasks[2].metrics.cpu.sort = 400;

  const std::string report = TopTasksReport(tasks, 2);
  // Only the two most expensive tasks appear, costliest first.
  EXPECT_NE(report.find("reduce"), std::string::npos);
  EXPECT_NE(report.find("reduce_fn"), std::string::npos);
  EXPECT_NE(report.find("map_fn"), std::string::npos);
  EXPECT_EQ(report.find("sort"), std::string::npos);
  EXPECT_LT(report.find("reduce_fn"), report.find("map_fn"));
  EXPECT_EQ(TopTasksReport({}), "");
}

TEST(Metrics, ToStringMentionsKeyCounters) {
  JobMetrics m;
  m.input_records = 7;
  m.eager_records = 3;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("input"), std::string::npos);
  EXPECT_NE(s.find("eager=3"), std::string::npos);
  EXPECT_NE(s.find("shuffle"), std::string::npos);
}

}  // namespace
}  // namespace antimr
