// Property sweep over the codecs: round-trips across a grid of sizes,
// entropy profiles, and seeds. Complements codec_test.cc's targeted cases
// with breadth.
#include <gtest/gtest.h>

#include "codec/codec.h"
#include "common/random.h"

namespace antimr {
namespace {

enum class Profile { kRandom, kText, kRuns, kNearlyConstant, kStructured };

const char* ProfileName(Profile p) {
  switch (p) {
    case Profile::kRandom:
      return "random";
    case Profile::kText:
      return "text";
    case Profile::kRuns:
      return "runs";
    case Profile::kNearlyConstant:
      return "nearlyconstant";
    case Profile::kStructured:
      return "structured";
  }
  return "?";
}

std::string MakeInput(Profile profile, size_t size, uint64_t seed) {
  Random rng(seed);
  std::string s;
  s.reserve(size + 32);
  switch (profile) {
    case Profile::kRandom:
      while (s.size() < size) s.push_back(static_cast<char>(rng.Next()));
      break;
    case Profile::kText: {
      static const char* words[] = {"alpha", "beta", "gamma", "delta",
                                    "epsilon", "zeta", "eta", "theta"};
      while (s.size() < size) {
        s += words[rng.Uniform(8)];
        s.push_back(' ');
      }
      break;
    }
    case Profile::kRuns:
      while (s.size() < size) {
        s.append(1 + rng.Uniform(300), static_cast<char>('a' + rng.Uniform(4)));
      }
      break;
    case Profile::kNearlyConstant:
      s.assign(size, 'x');
      for (size_t i = 0; i < size / 1000 + 1 && !s.empty(); ++i) {
        s[rng.Uniform(s.size())] = static_cast<char>(rng.Next());
      }
      break;
    case Profile::kStructured:
      while (s.size() < size) {
        s += "id=" + std::to_string(rng.Uniform(10000)) +
             ",ts=17000" + std::to_string(rng.Uniform(100000)) + ";";
      }
      break;
  }
  s.resize(size);
  return s;
}

struct SweepParam {
  CodecType codec;
  Profile profile;
};

class CodecSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CodecSweep, RoundTripsAcrossSizes) {
  const Codec* codec = GetCodec(GetParam().codec);
  for (size_t size : {size_t{0}, size_t{1}, size_t{2}, size_t{7}, size_t{64},
                      size_t{1000}, size_t{65535}, size_t{65536},
                      size_t{65537}, size_t{200000}}) {
    for (uint64_t seed : {1u, 2u}) {
      const std::string input = MakeInput(GetParam().profile, size, seed);
      std::string compressed, restored;
      ASSERT_TRUE(codec->Compress(input, &compressed).ok())
          << codec->name() << " size=" << size;
      ASSERT_TRUE(codec->Decompress(compressed, &restored).ok())
          << codec->name() << " size=" << size;
      ASSERT_EQ(restored, input) << codec->name() << " size=" << size;
    }
  }
}

std::vector<SweepParam> Grid() {
  std::vector<SweepParam> grid;
  for (CodecType codec : {CodecType::kSnappyLike, CodecType::kDeflateLike,
                          CodecType::kGzip, CodecType::kBzip2Like}) {
    for (Profile profile :
         {Profile::kRandom, Profile::kText, Profile::kRuns,
          Profile::kNearlyConstant, Profile::kStructured}) {
      grid.push_back({codec, profile});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecSweep, ::testing::ValuesIn(Grid()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = CodecTypeName(info.param.codec);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + ProfileName(info.param.profile);
    });

TEST(CodecSweep, CompressionIsDeterministic) {
  const std::string input = MakeInput(Profile::kText, 50000, 3);
  for (CodecType type : {CodecType::kSnappyLike, CodecType::kGzip,
                         CodecType::kBzip2Like}) {
    std::string a, b;
    ASSERT_TRUE(GetCodec(type)->Compress(input, &a).ok());
    ASSERT_TRUE(GetCodec(type)->Compress(input, &b).ok());
    EXPECT_EQ(a, b) << CodecTypeName(type);
  }
}

}  // namespace
}  // namespace antimr
