#include "common/status.h"

#include <gtest/gtest.h>

namespace antimr {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("disk gone");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_FALSE(st.IsNotFound());
  EXPECT_EQ(st.message(), "disk gone");
  EXPECT_EQ(st.ToString(), "IOError: disk gone");
}

TEST(Status, AllConstructorsSetMatchingPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status ReturnsEarly(bool fail) {
  ANTIMR_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::NotFound("reached end");
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_TRUE(ReturnsEarly(true).IsInternal());
  EXPECT_TRUE(ReturnsEarly(false).IsNotFound());
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace antimr
