// Columnar chunk format tests: roundtrip across codecs and key encodings,
// the EagerSH->dictionary payload rewrite, block stats pruning, and a
// corruption sweep (truncation, bit flips, bad dictionary ids) — a corrupt
// chunk must always surface as Status::Corruption, never as wrong records.
#include "table/chunk_reader.h"
#include "table/chunk_writer.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "anticombine/encoding.h"
#include "codec/crc32.h"
#include "common/coding.h"
#include "io/env.h"
#include "io/merger.h"

namespace antimr {
namespace {

using Records = std::vector<std::pair<std::string, std::string>>;

class ChunkTableTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  void WriteChunk(const std::string& fname, const Records& records,
                  ChunkWriter::Options options) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    ChunkWriter writer(std::move(file), options);
    for (const auto& [k, v] : records) {
      ASSERT_TRUE(writer.Append(k, v).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  Records ReadChunk(const std::string& fname,
                    ChunkReader::Options options = {},
                    BlockReadStats* stats = nullptr) {
    std::unique_ptr<ChunkReader> reader;
    Status st = OpenChunk(env_.get(), fname, std::move(options), &reader);
    EXPECT_TRUE(st.ok()) << st.ToString();
    Records got;
    if (!st.ok()) return got;
    while (reader->Valid()) {
      got.emplace_back(reader->key().ToString(), reader->value().ToString());
      EXPECT_TRUE(reader->Next().ok());
    }
    if (stats != nullptr) *stats = reader->stats();
    return got;
  }

  std::string ReadAll(const std::string& fname) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(fname, &file).ok());
    std::string out;
    std::vector<char> scratch(4096);
    Slice chunk;
    while (true) {
      EXPECT_TRUE(file->Read(scratch.size(), &chunk, scratch.data()).ok());
      if (chunk.empty()) break;
      out.append(chunk.data(), chunk.size());
    }
    return out;
  }

  void WriteAll(const std::string& fname, const std::string& bytes) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    ASSERT_TRUE(file->Append(bytes).ok());
    ASSERT_TRUE(file->Close().ok());
  }

  Status OpenAndDrain(const std::string& fname) {
    std::unique_ptr<ChunkReader> reader;
    ANTIMR_RETURN_NOT_OK(OpenChunk(env_.get(), fname, {}, &reader));
    while (reader->Valid()) {
      ANTIMR_RETURN_NOT_OK(reader->Next());
    }
    return Status::OK();
  }

  std::unique_ptr<Env> env_;
};

Records SortedRecords(size_t n, size_t value_size = 8) {
  Records records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06zu", i);
    records.emplace_back(key, std::string(value_size, 'a' + (i % 26)));
  }
  return records;
}

TEST_F(ChunkTableTest, RoundTrip) {
  const Records records = SortedRecords(1000);
  WriteChunk("c", records, {});
  EXPECT_EQ(ReadChunk("c"), records);
}

TEST_F(ChunkTableTest, EmptyChunk) {
  WriteChunk("c", {}, {});
  std::unique_ptr<ChunkReader> reader;
  ASSERT_TRUE(OpenChunk(env_.get(), "c", {}, &reader).ok());
  EXPECT_FALSE(reader->Valid());
}

TEST_F(ChunkTableTest, BinaryPayloadsAndEmptyFields) {
  Records records = {{std::string("\x00\x01\xff", 3), std::string(300, '\0')},
                     {std::string("\x01", 1), ""},
                     {"k", "v"}};
  WriteChunk("c", records, {});
  EXPECT_EQ(ReadChunk("c"), records);
}

TEST_F(ChunkTableTest, MultiBlockRoundTripAcrossCodecs) {
  const Records records = SortedRecords(2000, 64);
  for (CodecType codec :
       {CodecType::kNone, CodecType::kSnappyLike, CodecType::kDeflateLike,
        CodecType::kGzip, CodecType::kBzip2Like}) {
    ChunkWriter::Options wopts;
    wopts.block_bytes = 4 * 1024;  // force many blocks
    wopts.codec = codec;
    const std::string fname = "c" + std::to_string(static_cast<int>(codec));
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(fname, &file).ok());
    ChunkWriter writer(std::move(file), wopts);
    for (const auto& [k, v] : records) ASSERT_TRUE(writer.Append(k, v).ok());
    ASSERT_TRUE(writer.Finish().ok());
    EXPECT_GT(writer.block_count(), 10u);
    EXPECT_EQ(writer.record_count(), records.size());

    BlockReadStats stats;
    EXPECT_EQ(ReadChunk(fname, {}, &stats), records);
    EXPECT_EQ(stats.blocks, writer.block_count());
    EXPECT_EQ(stats.records, records.size());
    EXPECT_GT(stats.bytes_read, 0u);
  }
}

TEST_F(ChunkTableTest, RepeatedKeysChooseDictionaryEncoding) {
  // Grouped duplicate keys: dictionary encoding stores each key once plus
  // small ids, which beats raw len-prefixed repetition.
  Records records;
  for (int k = 0; k < 20; ++k) {
    for (int i = 0; i < 200; ++i) {
      char key[32];
      std::snprintf(key, sizeof(key), "shared-key-%04d", k);
      records.emplace_back(key, "v" + std::to_string(i));
    }
  }
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("c", &file).ok());
  ChunkWriter writer(std::move(file), {});
  for (const auto& [k, v] : records) ASSERT_TRUE(writer.Append(k, v).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_GT(writer.dict_blocks(), 0u);
  EXPECT_LT(writer.stored_bytes(), writer.raw_bytes());
  EXPECT_EQ(ReadChunk("c"), records);
}

TEST_F(ChunkTableTest, BatchReadMatchesRecordRead) {
  const Records records = SortedRecords(3000, 24);
  ChunkWriter::Options wopts;
  wopts.block_bytes = 8 * 1024;
  WriteChunk("c", records, wopts);

  std::unique_ptr<ChunkReader> reader;
  ASSERT_TRUE(OpenChunk(env_.get(), "c", {}, &reader).ok());
  ASSERT_TRUE(reader->SupportsEagerBatches());
  Records got;
  RecordBatch batch;
  BatchOptions opts;
  while (true) {
    ASSERT_TRUE(reader->NextBatch(&batch, opts).ok());
    if (batch.empty()) break;
    for (const RecordRef& r : batch) {
      got.emplace_back(r.key.ToString(), r.value.ToString());
    }
  }
  EXPECT_EQ(got, records);
}

TEST_F(ChunkTableTest, EagerDictRewriteRoundTripsToIdenticalBytes) {
  // Anti-combined segment shape: every value is an EagerSH payload whose
  // {other keys} also occur as row keys, so the writer can fold them into
  // the block dictionary. The reader must rematerialize byte-identical
  // standard EagerSH payloads — downstream AntiReducer decoding never
  // learns the storage did anything.
  std::vector<std::string> keys;
  for (int i = 0; i < 40; ++i) {
    keys.push_back("dictkey" + std::to_string(i / 10) + "-" +
                   std::to_string(i % 10));
  }
  Records records;
  for (int i = 0; i < 40; ++i) {
    std::vector<Slice> others;
    for (int j = 0; j < 40; j += 7) others.emplace_back(keys[j]);
    std::string payload;
    anticombine::EncodeEagerPayload(others, "value" + std::to_string(i),
                                    &payload);
    records.emplace_back(keys[i], payload);
  }

  ChunkWriter::Options wopts;
  wopts.rewrite_eager_payloads = true;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("c", &file).ok());
  ChunkWriter writer(std::move(file), wopts);
  for (const auto& [k, v] : records) ASSERT_TRUE(writer.Append(k, v).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_GT(writer.payload_rewrites(), 0u);
  EXPECT_LT(writer.stored_bytes(), writer.raw_bytes());

  EXPECT_EQ(ReadChunk("c"), records);
}

TEST_F(ChunkTableTest, PruningSkipsBlocksWithoutChangingSurvivors) {
  const Records records = SortedRecords(4000, 16);
  ChunkWriter::Options wopts;
  wopts.block_bytes = 2 * 1024;
  WriteChunk("c", records, wopts);

  // Unpruned baseline.
  BlockReadStats full_stats;
  const Records full = ReadChunk("c", {}, &full_stats);
  ASSERT_EQ(full, records);
  ASSERT_GT(full_stats.blocks, 20u);

  // Middle slice of the key space.
  KeyRange range;
  range.lo = "key001000";
  range.hi = "key003000";
  range.has_lo = range.has_hi = true;
  ChunkReader::Options ropts;
  ropts.prune = &range;
  ropts.prune_cmp = BytewiseCompare;
  BlockReadStats pruned_stats;
  const Records pruned = ReadChunk("c", std::move(ropts), &pruned_stats);

  EXPECT_GT(pruned_stats.blocks_pruned, 0u);
  EXPECT_GT(pruned_stats.pruned_bytes, 0u);
  EXPECT_LT(pruned_stats.bytes_read, full_stats.bytes_read);
  EXPECT_LT(pruned.size(), full.size());  // strictly fewer records survive

  // Stats-based pruning only drops whole blocks with no range keys at all:
  // every in-range record must survive, in order, byte-identical.
  Records expected_in_range;
  for (const auto& kv : records) {
    if (kv.first >= "key001000" && kv.first <= "key003000") {
      expected_in_range.push_back(kv);
    }
  }
  Records got_in_range;
  for (const auto& kv : pruned) {
    if (kv.first >= "key001000" && kv.first <= "key003000") {
      got_in_range.push_back(kv);
    }
  }
  EXPECT_EQ(got_in_range, expected_in_range);
}

TEST_F(ChunkTableTest, PruneEverythingReadsNoPayloads) {
  const Records records = SortedRecords(2000, 16);
  ChunkWriter::Options wopts;
  wopts.block_bytes = 2 * 1024;
  WriteChunk("c", records, wopts);

  KeyRange range;
  range.lo = "zzz";  // past every key
  range.has_lo = true;
  ChunkReader::Options ropts;
  ropts.prune = &range;
  ropts.prune_cmp = BytewiseCompare;
  BlockReadStats stats;
  const Records got = ReadChunk("c", std::move(ropts), &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.blocks, 0u);
  EXPECT_GT(stats.blocks_pruned, 0u);
  // Only magic + frame headers were transferred.
  EXPECT_LT(stats.bytes_read, stats.pruned_bytes);
}

// ---- Corruption sweep ------------------------------------------------------

TEST_F(ChunkTableTest, MissingMagicIsCorruption) {
  WriteAll("c", "AB");
  std::unique_ptr<ChunkReader> reader;
  const Status st = OpenChunk(env_.get(), "c", {}, &reader);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(ChunkTableTest, ForeignMagicIsCorruption) {
  WriteAll("c", std::string("ABS1") + "rest of a row run");
  std::unique_ptr<ChunkReader> reader;
  const Status st = OpenChunk(env_.get(), "c", {}, &reader);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("bad magic"), std::string::npos);
}

TEST_F(ChunkTableTest, TruncatedChunkIsCorruption) {
  WriteChunk("c", SortedRecords(2000, 32), {});
  const std::string bytes = ReadAll("c");
  ASSERT_GT(bytes.size(), 64u);
  // Chop at several depths: mid-header, mid-payload, one byte short.
  for (const size_t keep :
       {size_t{6}, bytes.size() / 2, bytes.size() - 1}) {
    WriteAll("t", bytes.substr(0, keep));
    const Status st = OpenAndDrain("t");
    EXPECT_TRUE(st.IsCorruption()) << "keep=" << keep << ": " << st.ToString();
  }
}

TEST_F(ChunkTableTest, FlippedPayloadByteIsCorruption) {
  WriteChunk("c", SortedRecords(500, 32), {});
  std::string bytes = ReadAll("c");
  // Flip a byte near the end: inside the last block's value payload.
  bytes[bytes.size() - 3] ^= 0x40;
  WriteAll("t", bytes);
  const Status st = OpenAndDrain("t");
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(ChunkTableTest, FlippedHeaderByteIsCorruption) {
  WriteChunk("c", SortedRecords(500, 32), {});
  std::string bytes = ReadAll("c");
  // First block header starts after magic(4) + header_len(4).
  bytes[10] ^= 0x01;
  WriteAll("t", bytes);
  const Status st = OpenAndDrain("t");
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(ChunkTableTest, ImplausibleHeaderLengthIsCorruption) {
  WriteChunk("c", SortedRecords(100), {});
  std::string bytes = ReadAll("c");
  // Overwrite the first header_len fixed32 with a huge value.
  bytes[4] = bytes[5] = bytes[6] = bytes[7] = '\xff';
  WriteAll("t", bytes);
  const Status st = OpenAndDrain("t");
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("implausible header length"),
            std::string::npos);
}

// A block whose CRCs are valid but whose dictionary ids point past the
// dictionary must be rejected by the id bounds check, not crash. The block
// is hand-assembled so both CRCs pass.
TEST_F(ChunkTableTest, OutOfRangeDictionaryIdIsCorruption) {
  // key_payload (dict): dict_size=1, entry "k", then one id = 5 (bad).
  std::string key_payload;
  PutVarint32(&key_payload, 1);
  PutLengthPrefixed(&key_payload, "k");
  PutVarint32(&key_payload, 5);
  std::string val_payload;
  PutLengthPrefixed(&val_payload, "v");

  std::string header;
  PutVarint64(&header, 1);                    // record_count
  header.push_back('\0');                     // flags
  header.push_back('\x01');                   // key_encoding = dictionary
  header.push_back('\0');                     // key_codec = none
  header.push_back('\0');                     // value_codec = none
  PutVarint32(&header, key_payload.size());   // key_raw_len
  PutVarint32(&header, key_payload.size());   // key_stored_len
  PutVarint32(&header, val_payload.size());   // val_raw_len
  PutVarint32(&header, val_payload.size());   // val_stored_len
  PutLengthPrefixed(&header, "k");            // min_key
  PutLengthPrefixed(&header, "k");            // max_key
  PutFixed32(&header, Crc32(0, key_payload + val_payload));
  PutFixed32(&header, Crc32(0, header));

  std::string chunk(kChunkMagic, sizeof(kChunkMagic));
  PutFixed32(&chunk, header.size());
  chunk += header + key_payload + val_payload;
  WriteAll("t", chunk);

  const Status st = OpenAndDrain("t");
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("bad dictionary id"), std::string::npos)
      << st.ToString();
}

TEST_F(ChunkTableTest, ErrorsNameChunkAndBlock) {
  WriteChunk("c", SortedRecords(500, 32), {});
  std::string bytes = ReadAll("c");
  bytes[bytes.size() - 3] ^= 0x40;
  WriteAll("t", bytes);
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile("t", &file).ok());
  ChunkReader::Options ropts;
  ropts.name = "spill_7";
  ChunkReader reader(std::move(file), std::move(ropts));
  Status st = reader.Open();
  while (st.ok() && reader.Valid()) st = reader.Next();
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("chunk spill_7 block"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace antimr
