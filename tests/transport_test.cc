// The transport and frame layer: loopback and TCP must behave identically —
// same framing, same failure classes (transient IOError for conn loss,
// corruption, short reads), same counters. Parameterized over both so every
// assertion runs on the in-memory path and on real sockets.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "io/env.h"
#include "mr/metrics.h"
#include "net/frame.h"
#include "net/shuffle_service.h"
#include "net/transport.h"
#include "net/wire.h"

namespace antimr {
namespace net {
namespace {

class TransportTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    transport_ = GetParam() == std::string("tcp") ? NewTcpTransport()
                                                  : NewLoopbackTransport();
  }

  /// Listener plus the first accepted conn, driven from a helper thread.
  struct Pair {
    std::unique_ptr<Listener> listener;
    std::unique_ptr<Conn> client;
    std::unique_ptr<Conn> server;
  };

  Pair Connect() {
    Pair p;
    EXPECT_TRUE(transport_->Listen("", &p.listener).ok());
    std::thread accepter(
        [&p] { EXPECT_TRUE(p.listener->Accept(&p.server).ok()); });
    EXPECT_TRUE(transport_->Dial(p.listener->addr(), &p.client).ok());
    accepter.join();
    return p;
  }

  std::unique_ptr<Transport> transport_;
};

TEST_P(TransportTest, FrameRoundTrip) {
  Pair p = Connect();
  const std::vector<std::pair<uint8_t, std::string>> frames = {
      {kFetchReq, "segment_0"},
      {kHeartbeat, ""},
      {kFetchChunk, std::string(100000, 'x')},
  };
  std::thread sender([&] {
    for (const auto& [type, payload] : frames) {
      ASSERT_TRUE(WriteFrame(p.client.get(), type, payload).ok());
    }
  });
  for (const auto& [want_type, want_payload] : frames) {
    uint8_t type = 0;
    std::string payload;
    ASSERT_TRUE(ReadFrame(p.server.get(), &type, &payload).ok());
    EXPECT_EQ(type, want_type);
    EXPECT_EQ(payload, want_payload);
  }
  sender.join();
}

TEST_P(TransportTest, WireCountersMeasureBothSides) {
  Pair p = Connect();
  const WireCounters before = SnapshotWireCounters();
  const std::string payload(1000, 'p');
  ASSERT_TRUE(WriteFrame(p.client.get(), kFetchChunk, payload).ok());
  uint8_t type = 0;
  std::string got;
  ASSERT_TRUE(ReadFrame(p.server.get(), &type, &got).ok());
  const WireCounters after = SnapshotWireCounters();
  EXPECT_EQ(after.bytes_sent - before.bytes_sent,
            kFrameHeaderBytes + payload.size());
  EXPECT_EQ(after.bytes_received - before.bytes_received,
            kFrameHeaderBytes + payload.size());
  EXPECT_EQ(after.frames_sent - before.frames_sent, 1u);
  EXPECT_EQ(after.frames_received - before.frames_received, 1u);
}

TEST_P(TransportTest, CrcMismatchIsTransientIOError) {
  Pair p = Connect();
  // A hand-built frame whose CRC doesn't match the payload: a flipped bit
  // anywhere in flight must surface, not deliver garbage.
  std::string wire;
  const std::string payload = "damaged goods";
  PutFixed32(&wire, static_cast<uint32_t>(payload.size()));
  wire.push_back(static_cast<char>(kFetchChunk));
  PutFixed32(&wire, 0xdeadbeef);
  wire.append(payload);
  ASSERT_TRUE(p.client->Write(wire).ok());
  uint8_t type = 0;
  std::string got;
  const Status st = ReadFrame(p.server.get(), &type, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient()) << st.ToString();
  EXPECT_NE(st.ToString().find("crc"), std::string::npos) << st.ToString();
}

TEST_P(TransportTest, ShortReadIsIOError) {
  Pair p = Connect();
  // Header promises 100 payload bytes; the peer dies after 3.
  std::string wire;
  PutFixed32(&wire, 100);
  wire.push_back(static_cast<char>(kFetchChunk));
  PutFixed32(&wire, 0);
  wire.append("abc");
  ASSERT_TRUE(p.client->Write(wire).ok());
  p.client->Close();
  uint8_t type = 0;
  std::string got;
  const Status st = ReadFrame(p.server.get(), &type, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient()) << st.ToString();
}

TEST_P(TransportTest, InsaneLengthHeaderIsRejected) {
  Pair p = Connect();
  std::string wire;
  PutFixed32(&wire, 0xffffffffu);  // 4 GiB "payload"
  wire.push_back(static_cast<char>(kFetchChunk));
  PutFixed32(&wire, 0);
  ASSERT_TRUE(p.client->Write(wire).ok());
  uint8_t type = 0;
  std::string got;
  const Status st = ReadFrame(p.server.get(), &type, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("exceeds"), std::string::npos)
      << st.ToString();
}

TEST_P(TransportTest, ReadAfterPeerCloseReportsConnectionClosed) {
  Pair p = Connect();
  p.client->Close();
  uint8_t type = 0;
  std::string got;
  const Status st = ReadFrame(p.server.get(), &type, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient()) << st.ToString();
}

TEST_P(TransportTest, DialAfterListenerCloseFails) {
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport_->Listen("", &listener).ok());
  const std::string addr = listener->addr();
  listener->Close();
  std::unique_ptr<Conn> conn;
  // TCP may need a beat for the kernel to tear the listen socket down; the
  // dial either fails outright or the dead conn fails on first use.
  const Status st = transport_->Dial(addr, &conn);
  if (st.ok()) {
    uint8_t type = 0;
    std::string payload;
    EXPECT_FALSE(ReadFrame(conn.get(), &type, &payload).ok());
  }
}

TEST_P(TransportTest, ReconnectAfterServerConnDrop) {
  Pair p = Connect();
  p.server->Close();  // server kicks the client
  // The old conn is dead...
  uint8_t type = 0;
  std::string payload;
  EXPECT_FALSE(ReadFrame(p.client.get(), &type, &payload).ok());
  // ...but the listener still accepts a fresh dial.
  std::unique_ptr<Conn> server2;
  std::thread accepter(
      [&] { EXPECT_TRUE(p.listener->Accept(&server2).ok()); });
  std::unique_ptr<Conn> client2;
  ASSERT_TRUE(transport_->Dial(p.listener->addr(), &client2).ok());
  accepter.join();
  ASSERT_TRUE(WriteFrame(client2.get(), kHeartbeat, "hi").ok());
  ASSERT_TRUE(ReadFrame(server2.get(), &type, &payload).ok());
  EXPECT_EQ(payload, "hi");
}

// --- shuffle service over the transport ----------------------------------

void WriteEnvFile(Env* env, const std::string& name,
                  const std::string& body) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(name, &file).ok());
  ASSERT_TRUE(file->Append(body).ok());
  ASSERT_TRUE(file->Close().ok());
}

TEST_P(TransportTest, SegmentFetchRoundTrip) {
  std::unique_ptr<Env> env = NewMemEnv();
  // Big enough to span several FetchChunk frames.
  std::string body;
  for (int i = 0; i < 50000; ++i) body += "record " + std::to_string(i);
  WriteEnvFile(env.get(), "job/seg_0", body);

  SegmentServer server(transport_.get(), env.get());
  ASSERT_TRUE(server.Start("").ok());
  ShuffleClient client(transport_.get());
  FetchedSegment seg;
  ASSERT_TRUE(client.Fetch(server.addr(), "job/seg_0", &seg).ok());
  EXPECT_EQ(seg.frames, body);
  EXPECT_EQ(seg.fetched_bytes, body.size());
}

TEST_P(TransportTest, MissingSegmentSurfacesAsTransientAndServerSurvives) {
  std::unique_ptr<Env> env = NewMemEnv();
  WriteEnvFile(env.get(), "job/real", "payload");
  SegmentServer server(transport_.get(), env.get());
  ASSERT_TRUE(server.Start("").ok());
  ShuffleClient client(transport_.get());
  FetchedSegment seg;
  const Status st = client.Fetch(server.addr(), "job/ghost", &seg);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient()) << st.ToString();
  // The error was answered in-protocol: the same client (and conn pool)
  // keeps working.
  ASSERT_TRUE(client.Fetch(server.addr(), "job/real", &seg).ok());
  EXPECT_EQ(seg.frames, "payload");
}

TEST_P(TransportTest, PooledConnSurvivesServerRestart) {
  std::unique_ptr<Env> env = NewMemEnv();
  WriteEnvFile(env.get(), "seg", "before");
  ShuffleClient client(transport_.get());
  std::string addr;
  {
    SegmentServer server(transport_.get(), env.get());
    ASSERT_TRUE(server.Start("").ok());
    addr = server.addr();
    FetchedSegment seg;
    ASSERT_TRUE(client.Fetch(addr, "seg", &seg).ok());
  }
  // Server gone: the pooled conn is stale and a fresh dial fails too.
  FetchedSegment seg;
  EXPECT_FALSE(client.Fetch(addr, "seg", &seg).ok());
  // A new server at a fresh address serves the same client again.
  SegmentServer revived(transport_.get(), env.get());
  ASSERT_TRUE(revived.Start("").ok());
  ASSERT_TRUE(client.Fetch(revived.addr(), "seg", &seg).ok());
  EXPECT_EQ(seg.frames, "before");
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportTest,
                         ::testing::Values("loopback", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// --- wire message round trips --------------------------------------------

TEST(WireTest, TaskAssignRoundTrip) {
  TaskAssignMsg msg;
  msg.rpc_id = 77;
  msg.kind = TaskKind::kReduce;
  msg.job_name = "wordcount";
  msg.params = {{"reduces", "4"}, {"anti_combine", "eager"}};
  msg.job_id = "job_a1";
  msg.task_index = 3;
  msg.attempt = 2;
  msg.split_records = "opaque bytes \x01\x02";
  msg.segments = {{"127.0.0.1:1234", "job/m0/p3"}, {"loopback:1", "m1/p3"}};
  msg.collect_output = true;
  msg.network_mb_per_s = 12.5;
  msg.readahead_blocks = 6;

  std::string payload;
  EncodeTaskAssign(msg, &payload);
  TaskAssignMsg got;
  ASSERT_TRUE(DecodeTaskAssign(payload, &got).ok());
  EXPECT_EQ(got.rpc_id, msg.rpc_id);
  EXPECT_EQ(got.kind, msg.kind);
  EXPECT_EQ(got.job_name, msg.job_name);
  EXPECT_EQ(got.params, msg.params);
  EXPECT_EQ(got.job_id, msg.job_id);
  EXPECT_EQ(got.task_index, msg.task_index);
  EXPECT_EQ(got.attempt, msg.attempt);
  EXPECT_EQ(got.split_records, msg.split_records);
  ASSERT_EQ(got.segments.size(), 2u);
  EXPECT_EQ(got.segments[0].addr, "127.0.0.1:1234");
  EXPECT_EQ(got.segments[1].file, "m1/p3");
  EXPECT_EQ(got.collect_output, msg.collect_output);
  EXPECT_DOUBLE_EQ(got.network_mb_per_s, msg.network_mb_per_s);
  EXPECT_EQ(got.readahead_blocks, msg.readahead_blocks);
}

TEST(WireTest, TaskResultCarriesStatus) {
  TaskResultMsg msg;
  msg.rpc_id = 9;
  msg.status_code = static_cast<int32_t>(Status::Code::kIOError);
  msg.status_msg = "disk on fire";
  msg.segment_files = {"a", "", "c"};  // "" = empty partition
  std::string payload;
  EncodeTaskResult(msg, &payload);
  TaskResultMsg got;
  ASSERT_TRUE(DecodeTaskResult(payload, &got).ok());
  EXPECT_EQ(got.rpc_id, 9u);
  const Status st = StatusFromWire(got.status_code, got.status_msg);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTransient());
  EXPECT_EQ(got.segment_files, msg.segment_files);
}

TEST(WireTest, KVListRoundTrip) {
  std::vector<KV> records = {{"key", "value"},
                             {"", ""},
                             {std::string(1, '\0'), "binary\x7f"}};
  std::string payload;
  EncodeKVList(records, &payload);
  std::vector<KV> got;
  ASSERT_TRUE(DecodeKVList(payload, &got).ok());
  EXPECT_EQ(got, records);
}

TEST(WireTest, TruncatedPayloadIsRejected) {
  RegisterMsg reg;
  reg.worker_name = "w";
  reg.shuffle_addr = "addr";
  reg.slots = 2;
  std::string payload;
  EncodeRegister(reg, &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    RegisterMsg got;
    EXPECT_FALSE(DecodeRegister(payload.substr(0, cut), &got).ok())
        << "truncation at " << cut << " decoded successfully";
  }
}

}  // namespace
}  // namespace net
}  // namespace antimr
