#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "datagen/cloud.h"
#include "datagen/graph.h"
#include "datagen/qlog.h"
#include "datagen/random_text.h"

namespace antimr {
namespace {

TEST(QLog, Deterministic) {
  QLogConfig cfg;
  cfg.num_records = 500;
  EXPECT_EQ(QLogGenerator(cfg).Generate(), QLogGenerator(cfg).Generate());
}

TEST(QLog, MeanLengthNearPaper) {
  QLogConfig cfg;
  cfg.num_distinct = 5000;
  QLogGenerator gen(cfg);
  // The paper's QLog averages 19.07 characters per query.
  EXPECT_NEAR(gen.MeanQueryLength(), 19.0, 5.0);
}

TEST(QLog, PopularityIsSkewed) {
  QLogConfig cfg;
  cfg.num_records = 20000;
  cfg.num_distinct = 2000;
  QLogGenerator gen(cfg);
  std::map<std::string, int> counts;
  for (const KV& kv : gen.Generate()) counts[kv.value]++;
  int max_count = 0;
  for (const auto& [q, c] : counts) max_count = std::max(max_count, c);
  // Zipf head should be far above the mean (10 per distinct query).
  EXPECT_GT(max_count, 100);
}

TEST(QLog, FeaturesAppendWhenEnabled) {
  QLogConfig cfg;
  cfg.num_records = 10;
  cfg.include_features = true;
  for (const KV& kv : QLogGenerator(cfg).Generate()) {
    EXPECT_NE(kv.value.find('\t'), std::string::npos);
  }
}

TEST(QLog, SplitsCoverAllRecords) {
  QLogConfig cfg;
  cfg.num_records = 1003;
  QLogGenerator gen(cfg);
  auto splits = gen.MakeSplits(7);
  size_t total = 0;
  for (const auto& split : splits) {
    auto source = split.open();
    KV kv;
    while (source->Next(&kv)) ++total;
  }
  EXPECT_EQ(total, 1003u);
}

TEST(Graph, DegreeDistribution) {
  GraphConfig cfg;
  cfg.num_nodes = 3000;
  cfg.mean_out_degree = 28.0;
  GraphGenerator gen(cfg);
  auto records = gen.Generate();
  ASSERT_EQ(records.size(), 3000u);
  uint64_t total_edges = 0;
  uint64_t max_degree = 0;
  for (const KV& kv : records) {
    uint64_t degree = 0;
    for (char c : kv.value) {
      if (c == ' ') ++degree;  // tokens after the rank
    }
    total_edges += degree;
    max_degree = std::max(max_degree, degree);
  }
  const double mean = static_cast<double>(total_edges) / 3000.0;
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 60.0);
  // Power law: some node far above the mean.
  EXPECT_GT(max_degree, static_cast<uint64_t>(mean * 5));
}

TEST(Graph, NodeIdsSortNumerically) {
  EXPECT_LT(GraphGenerator::NodeId(9), GraphGenerator::NodeId(10));
  EXPECT_LT(GraphGenerator::NodeId(99), GraphGenerator::NodeId(100000));
}

TEST(Cloud, RecordsHave28Attributes) {
  CloudConfig cfg;
  cfg.num_records = 50;
  for (const KV& kv : CloudGenerator(cfg).Generate()) {
    int commas = 0;
    for (char c : kv.value) {
      if (c == ',') ++commas;
    }
    EXPECT_EQ(commas, 27) << kv.value;
  }
}

TEST(Cloud, ParseReportRoundTrip) {
  CloudConfig cfg;
  cfg.num_records = 200;
  for (const KV& kv : CloudGenerator(cfg).Generate()) {
    CloudReport report;
    ASSERT_TRUE(CloudGenerator::ParseReport(kv.value, &report));
    EXPECT_GE(report.date, 0);
    EXPECT_LT(report.date, cfg.num_days);
    EXPECT_GE(report.longitude, -180);
    EXPECT_LT(report.longitude, 180);
    EXPECT_GE(report.latitude, -90);
    EXPECT_LE(report.latitude, 90);
  }
}

TEST(Cloud, ParseRejectsGarbage) {
  CloudReport report;
  EXPECT_FALSE(CloudGenerator::ParseReport(Slice("not,numbers"), &report));
  EXPECT_FALSE(CloudGenerator::ParseReport(Slice(""), &report));
  EXPECT_FALSE(CloudGenerator::ParseReport(Slice("1,2"), &report));
  EXPECT_TRUE(CloudGenerator::ParseReport(Slice("1,-2,3"), &report));
  EXPECT_EQ(report.longitude, -2);
}

TEST(RandomText, VocabularyBounded) {
  RandomTextConfig cfg;
  cfg.num_lines = 500;
  cfg.vocabulary_words = 100;
  RandomTextGenerator gen(cfg);
  std::set<std::string> words;
  for (const KV& kv : gen.Generate()) {
    size_t start = 0;
    for (size_t i = 0; i <= kv.value.size(); ++i) {
      if (i == kv.value.size() || kv.value[i] == ' ') {
        if (i > start) words.insert(kv.value.substr(start, i - start));
        start = i + 1;
      }
    }
  }
  EXPECT_LE(words.size(), 100u);
  EXPECT_GT(words.size(), 50u);
}

TEST(RandomText, KeysAreUniqueAndOrdered) {
  RandomTextConfig cfg;
  cfg.num_lines = 100;
  auto records = RandomTextGenerator(cfg).Generate();
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].key, records[i].key);
  }
}

}  // namespace
}  // namespace antimr
