#include "workloads/pagerank.h"

#include <cstdlib>
#include <map>

#include <gtest/gtest.h>

#include "datagen/graph.h"
#include "test_util.h"

namespace antimr {
namespace {

using testing::MustRun;
using workloads::MakePageRankJob;
using workloads::PageRankConfig;
using workloads::RunPageRank;

double RankOf(const std::vector<KV>& records, const std::string& node) {
  for (const KV& kv : records) {
    if (kv.key == node) return std::strtod(kv.value.c_str(), nullptr);
  }
  ADD_FAILURE() << "node " << node << " missing";
  return -1;
}

// A 3-node cycle: ranks must converge to 1/3 each.
std::vector<KV> Cycle3() {
  return {{"n0", "0.3333333333 n1"},
          {"n1", "0.3333333333 n2"},
          {"n2", "0.3333333333 n0"}};
}

TEST(PageRank, CycleStaysUniform) {
  PageRankConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_reduce_tasks = 2;
  workloads::PageRankRunResult result;
  ASSERT_TRUE(
      RunPageRank(cfg, Cycle3(), 3, nullptr, 1, &result).ok());
  for (const char* n : {"n0", "n1", "n2"}) {
    EXPECT_NEAR(RankOf(result.final_ranks, n), 1.0 / 3, 1e-6);
  }
}

TEST(PageRank, SinkAttractorGainsRank) {
  // Star: n1 and n2 both point at n0; n0 points at n1.
  std::vector<KV> graph = {{"n0", "0.3333333333 n1"},
                           {"n1", "0.3333333333 n0"},
                           {"n2", "0.3333333333 n0"}};
  PageRankConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_reduce_tasks = 2;
  workloads::PageRankRunResult result;
  ASSERT_TRUE(RunPageRank(cfg, graph, 5, nullptr, 1, &result).ok());
  EXPECT_GT(RankOf(result.final_ranks, "n0"),
            RankOf(result.final_ranks, "n2"));
}

TEST(PageRank, AdjacencySurvivesIterations) {
  PageRankConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_reduce_tasks = 1;
  workloads::PageRankRunResult result;
  ASSERT_TRUE(RunPageRank(cfg, Cycle3(), 4, nullptr, 1, &result).ok());
  ASSERT_EQ(result.final_ranks.size(), 3u);
  for (const KV& kv : result.final_ranks) {
    EXPECT_NE(kv.value.find(" n"), std::string::npos)
        << "adjacency lost for " << kv.key;
  }
}

TEST(PageRank, AntiCombiningMatchesOriginal) {
  GraphConfig gc;
  gc.num_nodes = 300;
  gc.mean_out_degree = 8;
  auto graph = GraphGenerator(gc).Generate();
  PageRankConfig cfg;
  cfg.num_nodes = gc.num_nodes;
  cfg.num_reduce_tasks = 4;

  workloads::PageRankRunResult original, anti;
  ASSERT_TRUE(RunPageRank(cfg, graph, 3, nullptr, 2, &original).ok());
  anticombine::AntiCombineOptions options;
  ASSERT_TRUE(RunPageRank(cfg, graph, 3, &options, 2, &anti).ok());

  std::map<std::string, std::string> a, b;
  for (const KV& kv : original.final_ranks) a[kv.key] = kv.value;
  for (const KV& kv : anti.final_ranks) b[kv.key] = kv.value;
  EXPECT_EQ(a, b);
}

TEST(PageRank, AntiCombiningShrinksShuffle) {
  GraphConfig gc;
  gc.num_nodes = 500;
  gc.mean_out_degree = 20;
  auto graph = GraphGenerator(gc).Generate();
  PageRankConfig cfg;
  cfg.num_nodes = gc.num_nodes;
  cfg.num_reduce_tasks = 4;

  workloads::PageRankRunResult original, anti;
  ASSERT_TRUE(RunPageRank(cfg, graph, 2, nullptr, 2, &original).ok());
  anticombine::AntiCombineOptions options;
  ASSERT_TRUE(RunPageRank(cfg, graph, 2, &options, 2, &anti).ok());
  EXPECT_LT(anti.total.emitted_bytes, original.total.emitted_bytes);
}

}  // namespace
}  // namespace antimr
