// The multi-tenant job service end to end: admission control (quota and
// backpressure rejects), weighted fair-share dispatch order with strict
// FIFO inside a pool, abort of queued and running jobs (the latter scrubbed
// off workers by the kScrubJob GC), and concurrent jobs on shared workers
// producing byte-identical output to solo runs — over loopback and TCP,
// in-process and through the kSubmitJob wire plane.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/coordinator.h"
#include "engine/job_registry.h"
#include "engine/job_service.h"
#include "engine/worker.h"
#include "datagen/cloud.h"
#include "datagen/random_text.h"
#include "io/env.h"
#include "net/transport.h"
#include "net/wire.h"
#include "test_util.h"
#include "workloads/registry.h"

namespace antimr {
namespace {

using engine::Coordinator;
using engine::CoordinatorOptions;
using engine::DistJobResult;
using engine::JobService;
using engine::JobServiceClient;
using engine::JobServiceOptions;
using engine::JobSubmission;
using engine::OutputMultisetHash;
using engine::PoolConfig;
using engine::Worker;
using engine::WorkerOptions;

std::vector<std::vector<KV>> Chunk(std::vector<KV> records, int num_splits) {
  std::vector<std::vector<KV>> chunks;
  const size_t per =
      (records.size() + num_splits - 1) / static_cast<size_t>(num_splits);
  for (size_t start = 0; start < records.size(); start += per) {
    const size_t end = std::min(records.size(), start + per);
    chunks.emplace_back(records.begin() + static_cast<long>(start),
                        records.begin() + static_cast<long>(end));
  }
  if (chunks.empty()) chunks.emplace_back();
  return chunks;
}

std::vector<KV> TextInput(uint64_t lines, uint64_t seed) {
  RandomTextConfig config;
  config.num_lines = lines;
  config.seed = seed;
  return RandomTextGenerator(config).Generate();
}

/// Single-process reference output for a registered job over `records`.
std::vector<KV> SingleProcessOutput(const std::string& job_name,
                                    const net::JobParams& params,
                                    const std::vector<KV>& records,
                                    int maps) {
  JobSpec spec;
  Status st = engine::BuildRegisteredJob(job_name, params, &spec);
  EXPECT_TRUE(st.ok()) << st.ToString();
  RunOptions run;
  run.collect_output = true;
  JobResult result;
  st = RunJob(spec, MakeSplits(records, maps), run, &result);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return result.FlatOutput();
}

JobSubmission WordCountSubmission(uint64_t lines, uint64_t seed, int maps) {
  JobSubmission sub;
  sub.job_name = "wordcount";
  sub.params = {{"reduces", "2"}, {"combiner", "1"}};
  sub.splits = Chunk(TextInput(lines, seed), maps);
  return sub;
}

class JobServiceTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    workloads::RegisterStandardJobs();
    transport_ = GetParam() == std::string("tcp")
                     ? net::NewTcpTransport()
                     : net::NewLoopbackTransport();
    CoordinatorOptions options;
    options.heartbeat_timeout_nanos = 2000ull * 1000 * 1000;
    coord_ = std::make_unique<Coordinator>(transport_.get(), options);
    ASSERT_TRUE(coord_->Start("").ok());
  }

  void TearDown() override {
    if (service_ != nullptr) service_->Stop();
    coord_->Stop();
    for (auto& worker : workers_) worker->Stop();
  }

  void StartService(const JobServiceOptions& options) {
    service_ = std::make_unique<JobService>(coord_.get(), options);
  }

  void StartWorkers(int n, Env* env = nullptr) {
    const size_t base = workers_.size();
    for (int i = 0; i < n; ++i) {
      WorkerOptions options;
      options.name = "w" + std::to_string(base + i);
      options.slots = 2;
      options.heartbeat_period_nanos = 50ull * 1000 * 1000;
      options.env = env;
      workers_.push_back(
          std::make_unique<Worker>(transport_.get(), options));
    }
    for (size_t i = base; i < workers_.size(); ++i) {
      ASSERT_TRUE(workers_[i]->Start(coord_->addr()).ok());
    }
    ASSERT_TRUE(coord_->WaitForWorkers(static_cast<int>(workers_.size()),
                                       10ull * 1000 * 1000 * 1000));
  }

  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<Coordinator> coord_;
  std::unique_ptr<JobService> service_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // State borrowed by workers (shared Env, hook-captured flags) lives on
  // the fixture, not the test body: worker threads — scrub handlers in
  // particular — can still touch it between the end of TestBody and the
  // TearDown Stop calls.
  std::unique_ptr<Env> shared_env_;
  std::atomic<int> maps_started_{0};
  std::atomic<bool> release_maps_{false};
};

// Admission control: over-quota submissions, unknown pools, malformed
// submissions, and queue backpressure are all rejected up front with the
// documented status codes. No workers needed — nothing should dispatch.
TEST_P(JobServiceTest, AdmissionControlRejects) {
  JobServiceOptions options;
  PoolConfig pool;
  pool.name = "limited";
  pool.cpu_slots_quota = 4;
  pool.memory_quota_bytes = 32ull << 20;
  options.pools = {pool};
  options.max_queued_jobs = 2;
  options.default_memory_bytes = 1ull << 20;
  options.min_workers = 1;  // empty cluster: admitted jobs would just queue
  StartService(options);

  std::string id;
  // cpu slots beyond the pool quota can never be admitted.
  JobSubmission over = WordCountSubmission(50, 1, 2);
  over.cpu_slots = 8;
  Status st = service_->Submit(std::move(over), &id);
  EXPECT_EQ(Status::Code::kResourceExhausted, st.code()) << st.ToString();

  // Same for a memory estimate above the pool's memory quota.
  JobSubmission heavy = WordCountSubmission(50, 1, 2);
  heavy.memory_bytes = 64ull << 20;
  st = service_->Submit(std::move(heavy), &id);
  EXPECT_EQ(Status::Code::kResourceExhausted, st.code()) << st.ToString();

  // Unknown pool.
  JobSubmission wrong_pool = WordCountSubmission(50, 1, 2);
  wrong_pool.pool = "nope";
  st = service_->Submit(std::move(wrong_pool), &id);
  EXPECT_EQ(Status::Code::kNotFound, st.code()) << st.ToString();

  // Malformed: no splits.
  JobSubmission empty;
  empty.job_name = "wordcount";
  st = service_->Submit(std::move(empty), &id);
  EXPECT_EQ(Status::Code::kInvalidArgument, st.code()) << st.ToString();

  // Backpressure: the queue cap is 2; the third well-formed submission is
  // rejected with ResourceExhausted.
  ASSERT_TRUE(service_->Submit(WordCountSubmission(50, 1, 2), &id).ok());
  ASSERT_TRUE(service_->Submit(WordCountSubmission(50, 2, 2), &id).ok());
  st = service_->Submit(WordCountSubmission(50, 3, 2), &id);
  EXPECT_EQ(Status::Code::kResourceExhausted, st.code()) << st.ToString();
}

// Fair-share dispatch: pool "a" (weight 2) and pool "b" (weight 1) drain a
// backlog in the deterministic stride order a b a a b a a b a — cost in
// 2:1 proportion — while each pool's own jobs dispatch strictly FIFO.
TEST_P(JobServiceTest, WeightedFairShareAndFifoWithinPool) {
  JobServiceOptions options;
  PoolConfig pool_a, pool_b;
  pool_a.name = "a";
  pool_a.weight = 2.0;
  pool_b.name = "b";
  pool_b.weight = 1.0;
  options.pools = {pool_a, pool_b};
  options.default_cpu_slots = 1;
  options.max_concurrent_jobs = 1;  // serialize: dispatch order == run order
  options.min_workers = 1;
  StartService(options);

  // Build the backlog before any worker exists, so every job is queued when
  // the scheduler first gets capacity.
  std::vector<std::string> a_jobs, b_jobs;
  for (int i = 0; i < 6; ++i) {
    JobSubmission sub = WordCountSubmission(80, 10 + i, 2);
    sub.pool = "a";
    std::string id;
    ASSERT_TRUE(service_->Submit(std::move(sub), &id).ok());
    a_jobs.push_back(id);
  }
  for (int i = 0; i < 3; ++i) {
    JobSubmission sub = WordCountSubmission(80, 20 + i, 2);
    sub.pool = "b";
    std::string id;
    ASSERT_TRUE(service_->Submit(std::move(sub), &id).ok());
    b_jobs.push_back(id);
  }

  StartWorkers(2);
  for (const std::string& id : a_jobs) {
    Status st = service_->Wait(id);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  for (const std::string& id : b_jobs) {
    Status st = service_->Wait(id);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  auto seq_of = [&](const std::string& id) {
    net::JobStatusWire row;
    EXPECT_TRUE(service_->GetJob(id, &row).ok());
    return row.dispatch_seq;
  };
  // Stride order with pass ties broken by pool name:
  //   a1 b1 a2 a3 b2 a4 a5 b3 a6
  EXPECT_EQ(1u, seq_of(a_jobs[0]));
  EXPECT_EQ(2u, seq_of(b_jobs[0]));
  EXPECT_EQ(3u, seq_of(a_jobs[1]));
  EXPECT_EQ(4u, seq_of(a_jobs[2]));
  EXPECT_EQ(5u, seq_of(b_jobs[1]));
  EXPECT_EQ(6u, seq_of(a_jobs[3]));
  EXPECT_EQ(7u, seq_of(a_jobs[4]));
  EXPECT_EQ(8u, seq_of(b_jobs[2]));
  EXPECT_EQ(9u, seq_of(a_jobs[5]));
  // FIFO within each pool is implied by the exact sequence above, but
  // assert it directly for clarity.
  for (size_t i = 1; i < a_jobs.size(); ++i) {
    EXPECT_LT(seq_of(a_jobs[i - 1]), seq_of(a_jobs[i]));
  }
  for (size_t i = 1; i < b_jobs.size(); ++i) {
    EXPECT_LT(seq_of(b_jobs[i - 1]), seq_of(b_jobs[i]));
  }

  // Fairness accounting shows both pools did work.
  const auto usage = service_->PoolUsageSnapshot();
  ASSERT_EQ(2u, usage.size());
  EXPECT_EQ(6u, usage[0].jobs_completed);
  EXPECT_EQ(3u, usage[1].jobs_completed);
  EXPECT_GT(usage[0].busy_slot_nanos, 0u);
  EXPECT_GT(usage[1].busy_slot_nanos, 0u);
}

// Aborting a queued job dequeues it immediately; the terminal row survives
// in the table and a second abort is InvalidArgument.
TEST_P(JobServiceTest, AbortQueuedJob) {
  JobServiceOptions options;
  options.min_workers = 1;  // no workers: the job stays queued
  StartService(options);

  std::string id;
  ASSERT_TRUE(service_->Submit(WordCountSubmission(50, 5, 2), &id).ok());
  net::JobStatusWire row;
  ASSERT_TRUE(service_->GetJob(id, &row).ok());
  EXPECT_EQ("queued", row.state);
  EXPECT_EQ(1u, row.queue_position);

  ASSERT_TRUE(service_->Abort(id).ok());
  ASSERT_TRUE(service_->GetJob(id, &row).ok());
  EXPECT_EQ("aborted", row.state);
  const Status wait_st = service_->Wait(id);
  EXPECT_FALSE(wait_st.ok());

  const Status again = service_->Abort(id);
  EXPECT_EQ(Status::Code::kInvalidArgument, again.code());
  EXPECT_EQ(Status::Code::kNotFound, service_->Abort("missing").code());
}

// Aborting a running job: the flag plus the kCancelJob broadcast unwind the
// driver without exhausting retries, and the terminal kScrubJob broadcast
// garbage-collects every file in the job's id scope off the workers.
TEST_P(JobServiceTest, AbortRunningJobScrubsWorkerFiles) {
  JobServiceOptions options;
  options.min_workers = 2;
  StartService(options);

  shared_env_ = NewMemEnv();
  // Hold every map in the test hook until the abort lands, so the job is
  // deterministically mid-flight when Abort runs.
  for (int i = 0; i < 2; ++i) {
    WorkerOptions wopts;
    wopts.name = "w" + std::to_string(i);
    wopts.slots = 2;
    wopts.heartbeat_period_nanos = 50ull * 1000 * 1000;
    wopts.env = shared_env_.get();
    workers_.push_back(std::make_unique<Worker>(transport_.get(), wopts));
    workers_.back()->on_map_start = [this](int, uint32_t) {
      maps_started_.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!release_maps_.load() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    ASSERT_TRUE(workers_.back()->Start(coord_->addr()).ok());
  }
  ASSERT_TRUE(coord_->WaitForWorkers(2, 10ull * 1000 * 1000 * 1000));

  JobSubmission sub = WordCountSubmission(200, 6, 2);
  sub.job_id = "abortme";
  std::string id;
  ASSERT_TRUE(service_->Submit(std::move(sub), &id).ok());
  ASSERT_EQ("abortme", id);

  // Wait until at least one map attempt is on a worker, then abort.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (maps_started_.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(maps_started_.load(), 0);
  ASSERT_TRUE(service_->Abort(id).ok());
  release_maps_.store(true);

  const Status st = service_->Wait(id);
  EXPECT_FALSE(st.ok());
  net::JobStatusWire row;
  ASSERT_TRUE(service_->GetJob(id, &row).ok());
  EXPECT_EQ("aborted", row.state);

  // The terminal scrub broadcast deletes everything in the job's id scope
  // (including attempt-scoped partial segments) from worker storage.
  const auto scrub_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    std::vector<std::string> names;
    ASSERT_TRUE(shared_env_->ListFiles(&names).ok());
    size_t in_scope = 0;
    for (const std::string& name : names) {
      if (engine::JobIdInScope(name, id)) ++in_scope;
    }
    if (in_scope == 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), scrub_deadline)
        << in_scope << " files still in scope";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Two jobs running concurrently on shared workers must each produce output
// byte-identical (multiset) to their single-process runs — the isolation
// claim of job_id-namespaced segments.
TEST_P(JobServiceTest, ConcurrentJobsMatchSoloRuns) {
  JobServiceOptions options;
  PoolConfig fast, slow;
  fast.name = "fast";
  fast.weight = 2.0;
  slow.name = "slow";
  options.pools = {fast, slow};
  options.max_concurrent_jobs = 4;
  StartService(options);
  StartWorkers(3);

  const std::vector<KV> wc_input = TextInput(3000, 11);
  CloudConfig cc;
  cc.num_records = 1500;
  cc.seed = 7;
  const std::vector<KV> tj_input = CloudGenerator(cc).Generate();

  JobSubmission wc;
  wc.pool = "fast";
  wc.job_name = "wordcount";
  wc.params = {{"reduces", "4"}, {"combiner", "1"}};
  wc.splits = Chunk(wc_input, 4);
  JobSubmission tj;
  tj.pool = "slow";
  tj.job_name = "theta_join";
  tj.params = {{"reduces", "4"},
               {"grid_rows", "2"},
               {"grid_cols", "2"}};
  tj.splits = Chunk(tj_input, 4);

  std::string wc_id, tj_id;
  ASSERT_TRUE(service_->Submit(std::move(wc), &wc_id).ok());
  ASSERT_TRUE(service_->Submit(std::move(tj), &tj_id).ok());

  DistJobResult wc_result, tj_result;
  Status st = service_->Wait(wc_id, &wc_result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  st = service_->Wait(tj_id, &tj_result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  const std::vector<KV> wc_solo = SingleProcessOutput(
      "wordcount", {{"reduces", "4"}, {"combiner", "1"}}, wc_input, 4);
  const std::vector<KV> tj_solo = SingleProcessOutput(
      "theta_join",
      {{"reduces", "4"}, {"grid_rows", "2"}, {"grid_cols", "2"}}, tj_input,
      4);
  EXPECT_EQ(testing::Canonicalize(wc_solo),
            testing::Canonicalize(wc_result.FlatOutput()));
  EXPECT_EQ(testing::Canonicalize(tj_solo),
            testing::Canonicalize(tj_result.FlatOutput()));

  // The job table's hash is the same multiset hash of the same output.
  net::JobStatusWire row;
  ASSERT_TRUE(service_->GetJob(wc_id, &row).ok());
  EXPECT_EQ(OutputMultisetHash(wc_solo), row.output_hash);
  ASSERT_TRUE(service_->GetJob(tj_id, &row).ok());
  EXPECT_EQ(OutputMultisetHash(tj_solo), row.output_hash);
  EXPECT_EQ(tj_solo.size(), row.output_records);
}

// The wire plane: submit, poll, list, and abort through kSubmitJob frames
// over a real dialed connection, with NotFound/InvalidArgument crossing the
// wire intact.
TEST_P(JobServiceTest, WireLifecycle) {
  JobServiceOptions options;
  StartService(options);
  StartWorkers(2);
  ASSERT_TRUE(service_->Serve("").ok());

  JobServiceClient client(transport_.get(), service_->serve_addr());

  net::SubmitJobMsg msg;
  msg.job_name = "wordcount";
  msg.params = {{"reduces", "2"}, {"combiner", "1"}};
  const std::vector<std::vector<KV>> splits = Chunk(TextInput(400, 3), 2);
  msg.splits.resize(splits.size());
  for (size_t m = 0; m < splits.size(); ++m) {
    net::EncodeKVList(splits[m], &msg.splits[m]);
  }
  std::string id;
  Status st = client.Submit(msg, &id);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_FALSE(id.empty());

  net::JobStatusWire row;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    st = client.GetStatus(id, &row);
    ASSERT_TRUE(st.ok()) << st.ToString();
    if (row.state == "succeeded" || row.state == "failed" ||
        row.state == "aborted") {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ("succeeded", row.state);
  const std::vector<KV> solo = SingleProcessOutput(
      "wordcount", {{"reduces", "2"}, {"combiner", "1"}},
      TextInput(400, 3), 2);
  EXPECT_EQ(OutputMultisetHash(solo), row.output_hash);
  EXPECT_EQ(solo.size(), row.output_records);

  std::vector<net::JobStatusWire> rows;
  ASSERT_TRUE(client.List(&rows).ok());
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ(id, rows[0].job_id);

  // Errors cross the wire with their codes intact.
  EXPECT_EQ(Status::Code::kNotFound,
            client.GetStatus("missing", &row).code());
  EXPECT_EQ(Status::Code::kInvalidArgument, client.Abort(id).code());

  net::SubmitJobMsg bad;
  bad.job_name = "wordcount";  // no splits
  EXPECT_EQ(Status::Code::kInvalidArgument, client.Submit(bad, &id).code());
}

// RunDistributedJob is now a shim over an ephemeral service; the legacy
// call signature and output contract are unchanged.
TEST_P(JobServiceTest, LegacyShimMatchesSolo) {
  StartWorkers(2);
  const std::vector<KV> input = TextInput(1500, 23);
  engine::DistJobOptions dist;
  dist.job_name = "wordcount";
  dist.params = {{"reduces", "3"}, {"combiner", "1"}};
  dist.splits = Chunk(input, 3);
  DistJobResult result;
  const Status st = engine::RunDistributedJob(coord_.get(), dist, &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::vector<KV> solo = SingleProcessOutput(
      "wordcount", {{"reduces", "3"}, {"combiner", "1"}}, input, 3);
  EXPECT_EQ(testing::Canonicalize(solo),
            testing::Canonicalize(result.FlatOutput()));
}

INSTANTIATE_TEST_SUITE_P(Transports, JobServiceTest,
                         ::testing::Values("loopback", "tcp"));

}  // namespace
}  // namespace antimr
