// Integration: full jobs (original and Anti-Combining, with spills and
// Shared spills) over the real-filesystem Env, verifying the storage layer
// abstraction holds outside the in-memory fast path.
#include <unistd.h>

#include <gtest/gtest.h>

#include "datagen/qlog.h"
#include "test_util.h"
#include "workloads/query_suggestion.h"

namespace antimr {
namespace {

std::string TempRoot() {
  static int counter = 0;
  return "/tmp/antimr_posix_job_" + std::to_string(getpid()) + "_" +
         std::to_string(counter++);
}

TEST(PosixJob, OriginalJobMatchesMemEnvRun) {
  QLogConfig qc;
  qc.num_records = 2000;
  QLogGenerator gen(qc);
  workloads::QuerySuggestionConfig cfg;
  cfg.num_reduce_tasks = 3;
  cfg.map_buffer_bytes = 16 * 1024;  // force spills onto the real disk
  const JobSpec spec = workloads::MakeQuerySuggestionJob(cfg);

  JobResult mem_result;
  ASSERT_TRUE(RunJob(spec, gen.MakeSplits(3), &mem_result).ok());

  auto posix_env = NewPosixEnv(TempRoot());
  RunOptions options;
  options.env = posix_env.get();
  JobResult posix_result;
  ASSERT_TRUE(RunJob(spec, gen.MakeSplits(3), options, &posix_result).ok());

  EXPECT_EQ(testing::Canonicalize(mem_result.FlatOutput()),
            testing::Canonicalize(posix_result.FlatOutput()));
  EXPECT_GT(posix_result.metrics.disk_bytes_written, 0u);
}

TEST(PosixJob, AntiCombiningWithSharedSpillsOnRealDisk) {
  QLogConfig qc;
  qc.num_records = 2000;
  QLogGenerator gen(qc);
  workloads::QuerySuggestionConfig cfg;
  cfg.num_reduce_tasks = 3;
  const JobSpec original = workloads::MakeQuerySuggestionJob(cfg);

  anticombine::AntiCombineOptions ac;
  ac.shared_memory_bytes = 16 * 1024;  // Shared spills hit the real disk

  auto posix_env = NewPosixEnv(TempRoot());
  const std::vector<KV> expected = testing::Canonicalize(
      testing::MustRun(original, gen.MakeSplits(3)));

  RunOptions options;
  options.env = posix_env.get();
  JobResult anti_result;
  ASSERT_TRUE(RunJob(anticombine::EnableAntiCombining(original, ac),
                     gen.MakeSplits(3), options, &anti_result)
                  .ok());
  EXPECT_EQ(expected, testing::Canonicalize(anti_result.FlatOutput()));
  EXPECT_GT(anti_result.metrics.shared_spills, 0u);

  // Intermediates (including Shared spill files) must be cleaned up.
  std::vector<std::string> leftover;
  ASSERT_TRUE(posix_env->ListFiles(&leftover).ok());
  EXPECT_TRUE(leftover.empty())
      << leftover.size() << " files leaked, e.g. " << leftover.front();
}

}  // namespace
}  // namespace antimr
