# ctest script behind the cluster_trace_validate test: run a distributed
# wordcount on the in-process loopback cluster with --cluster-trace, then
# validate the merged trace — one named pid lane per process (coordinator +
# 2 workers), dispatch flow arrows with matched s/f pairs, and task spans
# from both the map and reduce sides.
set(TRACE_FILE ${WORK_DIR}/cluster_trace_validate.json)

execute_process(
  COMMAND ${ANTIMR_CLI} run --workload=wordcount --records=3000
          --maps=4 --reduces=3 --dist=loopback --workers=2
          --cluster-trace=${TRACE_FILE}
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "antimr_cli run --dist=loopback failed (${run_rc}):\n"
                      "${run_out}\n${run_err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${VALIDATOR} ${TRACE_FILE}
          --expect-pids 3 --expect-flows 2
          --expect-span dist_map --expect-span dist_reduce
  RESULT_VARIABLE validate_rc
  OUTPUT_VARIABLE validate_out
  ERROR_VARIABLE validate_err)
message(STATUS "${validate_out}${validate_err}")
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "validate_trace.py rejected ${TRACE_FILE}")
endif()
